package par

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Pool is a bounded admission pool: a counting semaphore over units of
// in-flight work, used by long-running services to cap concurrent
// analyses the same way ForEach caps sweep workers. Unlike ForEach —
// which owns a fixed index space — a Pool admits an open-ended request
// stream: callers Acquire a slot before starting work and Release it
// when done, and saturation is surfaced to the caller (to be turned into
// back-pressure, e.g. HTTP 429) rather than queued without bound.
type Pool struct {
	slots    chan struct{}
	inFlight atomic.Int64
}

// NewPool returns a pool admitting at most capacity concurrent holders.
// Non-positive capacities resolve like Workers: GOMAXPROCS slots.
func NewPool(capacity int) *Pool {
	capacity = Workers(capacity)
	return &Pool{slots: make(chan struct{}, capacity)}
}

// Acquire blocks until a slot is free or ctx is done, and reports which
// happened. On success the caller must Release exactly once.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		p.inFlight.Add(1)
		return nil
	default:
	}
	select {
	case p.slots <- struct{}{}:
		p.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("par: pool saturated (%d/%d in flight): %w",
			p.InFlight(), p.Capacity(), ctx.Err())
	}
}

// TryAcquire claims a slot without blocking; it reports whether one was
// available.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		p.inFlight.Add(1)
		return true
	default:
		return false
	}
}

// Release frees a slot previously obtained from Acquire or TryAcquire.
// Releasing more than was acquired panics — that is a caller bug.
func (p *Pool) Release() {
	if p.inFlight.Add(-1) < 0 {
		panic("par: Pool.Release without a matching Acquire")
	}
	<-p.slots
}

// Capacity returns the maximum number of concurrent holders.
func (p *Pool) Capacity() int { return cap(p.slots) }

// InFlight returns the current number of held slots.
func (p *Pool) InFlight() int { return int(p.inFlight.Load()) }
