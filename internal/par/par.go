// Package par is the deterministic parallel sweep engine behind every
// experiment driver. The corpus studies of the paper's evaluation are
// embarrassingly parallel — each task set is generated from its own
// random stream (gen.Substream) and analyzed independently — so the
// drivers fan the per-index work out over a bounded worker pool and
// reduce the per-index results in index order. Rendered output is
// therefore byte-identical for any worker count, which is the invariant
// internal/experiments/determinism_test.go pins.
//
// Error semantics match a sequential loop: when one or more calls fail,
// the error reported is the one raised at the smallest index, and no
// new indices are claimed once a failure is observed. Indices are
// claimed in increasing order, so every index below a failing one has
// already run — the winning error is exactly the error a sequential
// loop would have returned.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n when positive, otherwise
// GOMAXPROCS (all available cores).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), distributing the indices
// over up to workers goroutines (Workers resolves non-positive values).
// fn must be safe for concurrent invocation on distinct indices; it
// typically writes into its own slot of a pre-allocated result slice.
// On failure the remaining unclaimed indices are cancelled and the
// smallest-index error is returned. A panicking fn is treated as a
// failure at its index, not a crash: a worker goroutine dying mid-sweep
// would otherwise leave wg.Wait stuck forever (or kill the process), so
// the panic is recovered and surfaced through the normal error path.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := protect(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next index to claim
		stop atomic.Bool  // set on first failure; halts claiming
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n // smallest failing index seen so far
		firstErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := protect(fn, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// protect runs fn(i), converting a panic into an error carrying the
// index and the panic value.
func protect(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("par: panic at index %d: %v", i, r)
		}
	}()
	return fn(i)
}

// Map evaluates fn over [0, n) with ForEach's scheduling and returns
// the results in index order. On failure the partial results are
// discarded and the smallest-index error is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
