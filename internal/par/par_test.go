package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 237
		counts := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	// Indices 5 and 40 both fail; every worker count must report index
	// 5's error, like a sequential loop would.
	for _, workers := range []int{1, 2, 7} {
		err := ForEach(100, workers, func(i int) error {
			if i == 5 || i == 40 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 5" {
			t.Fatalf("workers=%d: got %v, want boom at 5", workers, err)
		}
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(1_000_000, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Claiming halts after the failure; only a bounded prefix runs.
	if got := ran.Load(); got > 10_000 {
		t.Fatalf("ran %d indices after early error", got)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapDiscardsOnError(t *testing.T) {
	got, err := Map(10, 4, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got %v, %v; want nil, error", got, err)
	}
}

func TestForEachWorkersExceedingItems(t *testing.T) {
	// More workers than indices must neither deadlock nor duplicate work:
	// the worker count is clamped to n.
	n := 3
	counts := make([]atomic.Int32, n)
	if err := ForEach(n, 64, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachNonPositiveWorkers(t *testing.T) {
	// workers ≤ 0 resolves to all cores; the sweep still covers every
	// index exactly once and returns the sequential error.
	for _, workers := range []int{0, -5} {
		var ran atomic.Int32
		err := ForEach(20, workers, func(i int) error {
			ran.Add(1)
			if i == 11 {
				return errors.New("fail at 11")
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 11" {
			t.Fatalf("workers=%d: got %v, want fail at 11", workers, err)
		}
	}
}

func TestForEachRecoversPanickingItem(t *testing.T) {
	// A panicking work item must surface as that index's error — for a
	// parallel sweep a dead worker would otherwise hang wg.Wait forever
	// (or crash the process), and a sequential sweep would just crash.
	for _, workers := range []int{1, 4} {
		err := ForEach(50, workers, func(i int) error {
			if i == 7 {
				panic("poisoned item")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was not surfaced as an error", workers)
		}
		want := "par: panic at index 7: poisoned item"
		if err.Error() != want {
			t.Fatalf("workers=%d: got %q, want %q", workers, err, want)
		}
	}
}

func TestMapRecoversPanickingItem(t *testing.T) {
	got, err := Map(10, 4, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got %v, %v; want nil results and a panic-derived error", got, err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("default workers must be positive")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count must be honored")
	}
}
