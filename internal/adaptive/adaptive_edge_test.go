package adaptive

// Edge cases of the governor's budget accounting, asserted against the
// exact Corollary-5 analysis (core.ResetTime) rather than hard-coded
// constants wherever a bound is involved.

import (
	"testing"

	"mcspeedup/internal/core"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/rat"
)

func TestZeroCapacityBudgetRejected(t *testing.T) {
	zero := Budget{Capacity: rat.Zero, Recharge: rat.One}
	if err := zero.Validate(); err == nil {
		t.Error("zero-capacity budget validated")
	}
	if _, err := NewGovernor(examplesets.TableI(), rat.Two, zero); err == nil {
		t.Error("NewGovernor accepted a zero-capacity budget")
	}
	neg := Budget{Capacity: rat.New(-1, 1), Recharge: rat.One}
	if err := neg.Validate(); err == nil {
		t.Error("negative-capacity budget validated")
	}
	inf := Budget{Capacity: rat.PosInf, Recharge: rat.One}
	if err := inf.Validate(); err == nil {
		t.Error("infinite-capacity budget validated")
	}
}

func TestEpisodeExactlyEqualToRemainingCredit(t *testing.T) {
	// Table I at speed 2: Δ_R = 6, episode cost (2−1)·6 = 6. A bucket of
	// capacity exactly 6 must admit the episode (cost ≤ credit, not
	// cost < credit) and end with precisely zero credit.
	set := examplesets.TableI()
	rr, err := core.ResetTime(set, rat.Two)
	if err != nil {
		t.Fatal(err)
	}
	cost := rat.Two.Sub(rat.One).Mul(rr.Reset)
	g, err := NewGovernor(set, rat.Two, Budget{Capacity: cost, Recharge: rat.New(1, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminated || !d.Speed.Eq(rat.Two) {
		t.Fatalf("boundary episode not admitted at full speed: %+v", d)
	}
	if d.CreditAfter.Sign() != 0 {
		t.Fatalf("credit after boundary episode = %v, want exactly 0", d.CreditAfter)
	}
	if !d.Reset.Eq(rr.Reset) {
		t.Fatalf("episode reset %v differs from Corollary-5 bound %v", d.Reset, rr.Reset)
	}
	// With the bucket drained and negligible recharge, the immediate next
	// burst cannot even afford the floor: it must terminate, for free.
	d2, err := g.Request(6)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Terminated {
		t.Fatalf("drained bucket still admitted an overclocked episode: %+v", d2)
	}
	if !d2.CreditBefore.Eq(d2.CreditAfter) {
		t.Fatalf("termination consumed credit: %v → %v", d2.CreditBefore, d2.CreditAfter)
	}
}

func TestDegradeToFloorMatchesResetTimeBound(t *testing.T) {
	// Capacity that covers the floor episode but not the full-speed one:
	// full-speed cost is 6; floor s_min = 4/3 with cost (1/3)·Δ_R(4/3).
	set := examplesets.TableI()
	smin, err := core.MinSpeedup(set)
	if err != nil {
		t.Fatal(err)
	}
	if !smin.Speedup.Eq(rat.New(4, 3)) {
		t.Fatalf("Table I s_min = %v, want 4/3", smin.Speedup)
	}
	floorRR, err := core.ResetTime(set, smin.Speedup)
	if err != nil {
		t.Fatal(err)
	}
	floorCost := smin.Speedup.Sub(rat.One).Mul(floorRR.Reset)
	// Pick a capacity strictly between the floor cost and the full cost.
	capacity := floorCost.Add(rat.One)
	fullRR, err := core.ResetTime(set, rat.Two)
	if err != nil {
		t.Fatal(err)
	}
	fullCost := rat.Two.Sub(rat.One).Mul(fullRR.Reset)
	if capacity.Cmp(fullCost) >= 0 {
		t.Fatalf("test geometry broken: capacity %v not below full cost %v", capacity, fullCost)
	}
	g, err := NewGovernor(set, rat.Two, Budget{Capacity: capacity, Recharge: rat.New(1, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminated || !d.Speed.Eq(smin.Speedup) {
		t.Fatalf("expected degrade-to-floor at s_min = %v, got %+v", smin.Speedup, d)
	}
	// The admitted episode length must be exactly the Corollary-5 bound
	// at the floor speed — the guarantee that composes with package sim.
	if !d.Reset.Eq(floorRR.Reset) {
		t.Fatalf("floor episode reset %v, want Δ_R(s_min) = %v", d.Reset, floorRR.Reset)
	}
	if !d.CreditAfter.Eq(capacity.Sub(floorCost)) {
		t.Fatalf("floor episode cost: credit %v → %v, want drop of %v",
			d.CreditBefore, d.CreditAfter, floorCost)
	}
	// Monotonicity sanity: the floor episode is no shorter than the
	// full-speed one (less speed drains the backlog more slowly).
	if d.Reset.Cmp(fullRR.Reset) < 0 {
		t.Fatalf("Δ_R(s_min) = %v < Δ_R(2) = %v", d.Reset, fullRR.Reset)
	}
}
