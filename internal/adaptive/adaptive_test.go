package adaptive

import (
	"math/rand"
	"testing"

	"mcspeedup/internal/core"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
)

func tableIGovernor(t *testing.T, budget Budget) *Governor {
	t.Helper()
	g, err := NewGovernor(examplesets.TableI(), rat.Two, budget)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTurboBudget(t *testing.T) {
	b := TurboBudget(rat.Two, 30, 300)
	if !b.Capacity.Eq(rat.FromInt64(30)) {
		t.Errorf("capacity = %v, want 30", b.Capacity)
	}
	if !b.Recharge.Eq(rat.New(1, 10)) {
		t.Errorf("recharge = %v, want 1/10", b.Recharge)
	}
	if err := b.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Budget{}).Validate(); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestGovernorAdmitsAtFullSpeed(t *testing.T) {
	// Table I: Δ_R(2) = 6, so an episode at speed 2 costs (2−1)·6 = 6.
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(10), Recharge: rat.One})
	d, err := g.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Speed.Eq(rat.Two) || d.Terminated {
		t.Fatalf("decision = %+v, want full speed", d)
	}
	if !d.Reset.Eq(rat.FromInt64(6)) {
		t.Fatalf("reset = %v, want 6", d.Reset)
	}
	if !d.CreditAfter.Eq(rat.FromInt64(4)) {
		t.Fatalf("credit after = %v, want 10 − 6 = 4", d.CreditAfter)
	}
}

func TestGovernorDegradesSpeedThenTerminates(t *testing.T) {
	// Capacity 6 admits exactly one full-speed episode; with recharge
	// 1/100 the second immediate burst cannot afford speed 2, falls to
	// the floor s_min = 4/3 (cost (1/3)·Δ_R(4/3) = (1/3)·9 = 3)...
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(6), Recharge: rat.New(1, 100)})
	d1, err := g.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Speed.Eq(rat.Two) {
		t.Fatalf("first episode at %v, want 2", d1.Speed)
	}
	// Next burst arrives right at the reset: credit ≈ 0 + 6·(1/100).
	d2, err := g.Request(6)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Terminated {
		t.Fatalf("second decision = %+v, want termination (credit %v)", d2, d2.CreditBefore)
	}
	if !d2.Speed.Eq(rat.One) {
		t.Fatalf("termination must run at nominal speed, got %v", d2.Speed)
	}

	// A larger bucket with the same timing affords the floor speed.
	g2 := tableIGovernor(t, Budget{Capacity: rat.FromInt64(10), Recharge: rat.New(1, 100)})
	if _, err := g2.Request(0); err != nil { // full speed, cost 6 → 4 left
		t.Fatal(err)
	}
	d, err := g2.Request(6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Terminated || !d.Speed.Eq(rat.New(4, 3)) {
		t.Fatalf("expected floor speed 4/3, got %+v", d)
	}
}

func TestGovernorRecharges(t *testing.T) {
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(6), Recharge: rat.New(1, 10)})
	if _, err := g.Request(0); err != nil {
		t.Fatal(err)
	}
	// After the episode (reset at 6), waiting 60 ticks refills the
	// bucket (6 credits at 1/10 per tick) — full speed again.
	d, err := g.Request(66)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Speed.Eq(rat.Two) || d.Terminated {
		t.Fatalf("recharged decision = %+v, want full speed", d)
	}
	// Credit never exceeds capacity.
	if d.CreditBefore.Cmp(g.budget.Capacity) > 0 {
		t.Fatalf("credit %v above capacity", d.CreditBefore)
	}
}

func TestGovernorRejectsOutOfOrder(t *testing.T) {
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(10), Recharge: rat.One})
	if _, err := g.Request(0); err != nil {
		t.Fatal(err)
	}
	// The first episode resets at 6; a request at 3 violates the burst
	// model.
	if _, err := g.Request(3); err == nil {
		t.Error("overlapping request accepted")
	}
}

func TestSustainableGap(t *testing.T) {
	// Cost 6, recharge 1/10 → gap ≥ 6 + 60 = 66.
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(6), Recharge: rat.New(1, 10)})
	gap, ok := g.SustainableGap()
	if !ok || gap != 66 {
		t.Fatalf("gap = %d, %v; want 66", gap, ok)
	}
	// Bursts at exactly that spacing run at full speed forever.
	at := task.Time(0)
	for i := 0; i < 50; i++ {
		d, err := g.Request(at)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Speed.Eq(rat.Two) || d.Terminated {
			t.Fatalf("burst %d at %d degraded: %+v", i, at, d)
		}
		at += gap
	}
	// Consistency with the paper's Section-IV remark.
	rr, err := core.ResetTime(examplesets.TableI(), rat.Two)
	if err != nil {
		t.Fatal(err)
	}
	if !core.SustainableOverrunGap(rr.Reset, gap) {
		t.Error("sustainable gap shorter than Δ_R")
	}

	// An undersized bucket can never sustain full speed.
	small := tableIGovernor(t, Budget{Capacity: rat.FromInt64(2), Recharge: rat.One})
	if _, ok := small.SustainableGap(); ok {
		t.Error("capacity 2 cannot cover a cost-6 episode")
	}
}

func TestGovernorCreditInvariant(t *testing.T) {
	// Random burst trains: the credit must stay within [0, capacity] and
	// decisions must stay consistent with affordability.
	rnd := rand.New(rand.NewSource(99))
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(8), Recharge: rat.New(1, 7)})
	at := task.Time(0)
	for i := 0; i < 300; i++ {
		d, err := g.Request(at)
		if err != nil {
			t.Fatal(err)
		}
		if d.CreditAfter.Sign() < 0 || d.CreditAfter.Cmp(g.budget.Capacity) > 0 {
			t.Fatalf("credit %v out of [0, %v]", d.CreditAfter, g.budget.Capacity)
		}
		if d.Terminated && d.CreditBefore.Cmp(rat.FromInt64(3)) >= 0 {
			// With ≥ 3 credits the floor episode (cost 3) was
			// affordable; termination would be a policy bug.
			t.Fatalf("terminated with %v credits available", d.CreditBefore)
		}
		at += task.Time(d.Reset.Ceil()) + task.Time(rnd.Int63n(40))
	}
	if len(g.Decisions) != 300 {
		t.Fatalf("history length %d", len(g.Decisions))
	}
}

func TestNewGovernorRejections(t *testing.T) {
	set := examplesets.TableI()
	okBudget := Budget{Capacity: rat.FromInt64(10), Recharge: rat.One}
	if _, err := NewGovernor(set, rat.New(1, 2), okBudget); err == nil {
		t.Error("sub-nominal full speed accepted")
	}
	if _, err := NewGovernor(set, rat.One, okBudget); err == nil {
		t.Error("full speed below s_min = 4/3 accepted")
	}
	if _, err := NewGovernor(set, rat.Two, Budget{}); err == nil {
		t.Error("invalid budget accepted")
	}
	if _, err := NewGovernor(task.Set{}, rat.Two, okBudget); err == nil {
		t.Error("empty set accepted")
	}
}

func TestCreditAccessor(t *testing.T) {
	g := tableIGovernor(t, Budget{Capacity: rat.FromInt64(10), Recharge: rat.One})
	if !g.Credit().Eq(rat.FromInt64(10)) {
		t.Errorf("initial credit %v, want capacity", g.Credit())
	}
	if _, err := g.Request(0); err != nil {
		t.Fatal(err)
	}
	if !g.Credit().Eq(rat.FromInt64(4)) {
		t.Errorf("credit after episode %v, want 4", g.Credit())
	}
}
