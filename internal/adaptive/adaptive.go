// Package adaptive implements the runtime governance layer sketched in
// the paper's introduction: processor speedup "is often regulated by
// power/thermal management — for example, Intel turbo boost technology
// would allow a maximum of 2x speedup for around 30s", and "if [the
// overclocking time] exceeds the time allowed, we could then terminate
// tasks instead of overclocking to reset the system to normal speed".
//
// The governor models the thermal allowance as a token bucket: overclock
// credit drains at rate (s − 1) while the processor runs at speed s and
// recharges at a fixed rate while at nominal speed, capped at the bucket
// capacity (so "2x for 30 s" is capacity 30·(2−1) = 30 credit-seconds).
// Every overrun burst requests one HI-mode episode of the analytical
// worst-case length Δ_R(s); the governor admits the episode at full speed
// when the bucket covers it, degrades to the largest affordable speed
// that still meets the schedulability floor when it does not, and falls
// back to terminating LO-criticality tasks (nominal speed, LO service
// lost for the episode) when even that floor is unaffordable.
//
// The package is deliberately analytical — it reasons over episode
// requests and Corollary-5 bounds rather than individual jobs — so its
// guarantees compose with the exact analyses: if the governor admits an
// episode at speed s, the job-level simulator (package sim) running that
// episode at s provably meets all deadlines and resets within Δ_R(s).
package adaptive

import (
	"fmt"

	"mcspeedup/internal/core"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
)

// Budget is the thermal/power token bucket.
type Budget struct {
	// Capacity is the maximum stored overclock credit, in
	// (speed−1)·time units.
	Capacity rat.Rat
	// Recharge is the credit gained per unit of wall-clock time spent at
	// nominal speed.
	Recharge rat.Rat
}

// Validate checks the bucket parameters.
func (b Budget) Validate() error {
	if b.Capacity.Sign() <= 0 || b.Capacity.IsInf() {
		return fmt.Errorf("adaptive: capacity %v must be positive and finite", b.Capacity)
	}
	if b.Recharge.Sign() <= 0 || b.Recharge.IsInf() {
		return fmt.Errorf("adaptive: recharge rate %v must be positive and finite", b.Recharge)
	}
	return nil
}

// TurboBudget returns the bucket for "speed s for at most d time units
// from full, recharging from empty to full in rechargeTime".
func TurboBudget(speed rat.Rat, d, rechargeTime task.Time) Budget {
	cost := speed.Sub(rat.One).MulInt(int64(d))
	return Budget{
		Capacity: cost,
		Recharge: cost.Div(rat.FromInt64(int64(rechargeTime))),
	}
}

// Decision is the governor's verdict for one overrun episode.
type Decision struct {
	// At is the episode's start time.
	At task.Time
	// Speed is the admitted HI-mode speed (1 when terminating).
	Speed rat.Rat
	// Reset is the analytical worst-case episode length Δ_R(Speed).
	Reset rat.Rat
	// Terminated reports the fallback: LO tasks are dropped for this
	// episode instead of overclocking.
	Terminated bool
	// CreditBefore and CreditAfter book-end the bucket level.
	CreditBefore, CreditAfter rat.Rat
}

// Governor makes per-episode speed decisions for one task set.
type Governor struct {
	set    task.Set
	budget Budget

	// fullSpeed is the preferred HI-mode speed; floorSpeed is the exact
	// s_min of the (non-terminated) configuration — below it the
	// episode cannot be admitted without termination.
	fullSpeed  rat.Rat
	floorSpeed rat.Rat
	// termReset is Δ_R at nominal speed with LO tasks terminated (the
	// fallback is free: no overclock credit is spent).
	termReset rat.Rat

	credit   rat.Rat
	lastIdle rat.Rat // absolute time the previous episode's work drained
	// Decisions is the full history, for inspection and tests.
	Decisions []Decision
}

// NewGovernor validates the configuration and pre-computes the
// analytical quantities. The set must be HI-mode schedulable at
// fullSpeed, and the terminated fallback must itself be feasible at
// nominal speed (otherwise no governance policy can help).
func NewGovernor(s task.Set, fullSpeed rat.Rat, budget Budget) (*Governor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if fullSpeed.Cmp(rat.One) < 0 {
		return nil, fmt.Errorf("adaptive: full speed %v below nominal", fullSpeed)
	}
	smin, err := core.MinSpeedup(s)
	if err != nil {
		return nil, err
	}
	if !smin.Exact {
		return nil, fmt.Errorf("adaptive: inexact s_min bracket [%v, %v]; refusing to govern",
			smin.LowerBound, smin.Speedup)
	}
	if fullSpeed.Cmp(smin.Speedup) < 0 {
		return nil, fmt.Errorf("adaptive: full speed %v below s_min = %v", fullSpeed, smin.Speedup)
	}
	term := s.TerminateLO()
	tsmin, err := core.MinSpeedup(term)
	if err != nil {
		return nil, err
	}
	if tsmin.Speedup.Cmp(rat.One) > 0 {
		return nil, fmt.Errorf("adaptive: even termination needs speedup %v > 1; no safe fallback",
			tsmin.Speedup)
	}
	trr, err := core.ResetTime(term, rat.One)
	if err != nil {
		return nil, err
	}
	if trr.Reset.IsInf() {
		return nil, fmt.Errorf("adaptive: terminated configuration never provably idles at nominal speed")
	}
	g := &Governor{
		set:        s,
		budget:     budget,
		fullSpeed:  fullSpeed,
		floorSpeed: smin.Speedup,
		termReset:  trr.Reset,
		credit:     budget.Capacity,
		lastIdle:   rat.Zero,
	}
	return g, nil
}

// episodeCost returns the worst-case overclock credit an episode at the
// given speed consumes: (s − 1)·Δ_R(s). ok is false when Δ_R is infinite.
func (g *Governor) episodeCost(speed rat.Rat) (cost, reset rat.Rat, ok bool) {
	rr, err := core.ResetTime(g.set, speed)
	if err != nil || rr.Reset.IsInf() {
		return rat.Rat{}, rat.Rat{}, false
	}
	return speed.Sub(rat.One).Mul(rr.Reset), rr.Reset, true
}

// Request asks the governor to admit an overrun episode starting at time
// at (absolute integer ticks; requests must be non-decreasing in time and
// are assumed to arrive no earlier than the previous episode's reset —
// the §IV burst model). It returns the decision and updates the budget.
func (g *Governor) Request(at task.Time) (Decision, error) {
	t := rat.FromInt64(int64(at))
	if t.Cmp(g.lastIdle) < 0 {
		return Decision{}, fmt.Errorf("adaptive: request at %d predates previous reset %v", at, g.lastIdle)
	}
	// Recharge for the nominal-speed interval since the last reset.
	g.credit = rat.Min(g.budget.Capacity,
		g.credit.Add(t.Sub(g.lastIdle).Mul(g.budget.Recharge)))

	d := Decision{At: at, CreditBefore: g.credit}

	// Try the preferred speed, then the schedulability floor (when it
	// actually overclocks), then terminate.
	try := func(speed rat.Rat) bool {
		if speed.Cmp(rat.One) <= 0 {
			return false
		}
		cost, reset, ok := g.episodeCost(speed)
		if !ok || cost.Cmp(g.credit) > 0 {
			return false
		}
		g.credit = g.credit.Sub(cost)
		d.Speed, d.Reset = speed, reset
		return true
	}
	switch {
	case try(g.fullSpeed):
	case g.floorSpeed.Cmp(g.fullSpeed) < 0 && try(g.floorSpeed):
	case g.floorSpeed.Cmp(rat.One) <= 0:
		// The set needs no overclocking at all; run the episode at
		// nominal speed with full service.
		_, reset, ok := g.episodeCost(rat.One)
		if !ok {
			return Decision{}, fmt.Errorf("adaptive: nominal-speed episode never drains despite s_min = %v", g.floorSpeed)
		}
		d.Speed, d.Reset = rat.One, reset
	default:
		// Fallback: terminate LO tasks for this episode, no credit
		// spent.
		d.Speed, d.Reset, d.Terminated = rat.One, g.termReset, true
	}
	d.CreditAfter = g.credit
	g.lastIdle = t.Add(d.Reset)
	g.Decisions = append(g.Decisions, d)
	return d, nil
}

// Credit returns the current bucket level (as of the last decision).
func (g *Governor) Credit() rat.Rat { return g.credit }

// SustainableGap returns the minimum spacing between overrun bursts for
// which every episode can run at the preferred speed indefinitely: the
// per-episode credit cost must be recharged within the gap's nominal-
// speed remainder. ok is false when even back-to-back full-capacity use
// cannot sustain the preferred speed (cost exceeds capacity).
func (g *Governor) SustainableGap() (task.Time, bool) {
	cost, reset, ok := g.episodeCost(g.fullSpeed)
	if !ok || cost.Cmp(g.budget.Capacity) > 0 {
		return 0, false
	}
	// gap ≥ reset + cost/recharge: the episode runs for reset, then the
	// bucket refills its cost before the next burst.
	gap := reset.Add(cost.Div(g.budget.Recharge))
	return task.Time(gap.Ceil()), true
}
