package experiments

import (
	"math"
	"strings"
	"testing"

	"mcspeedup/internal/rat"
)

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !r.SMin.Eq(rat.New(4, 3)) {
		t.Errorf("s_min = %v, want 4/3", r.SMin)
	}
	if r.SMinDegraded.Cmp(rat.One) >= 0 {
		t.Errorf("degraded s_min = %v, want < 1", r.SMinDegraded)
	}
	if !r.ResetAt2.Eq(rat.FromInt64(6)) {
		t.Errorf("Δ_R(2) = %v, want 6", r.ResetAt2)
	}
	if r.ResetDegradedAt2.Cmp(r.ResetAt2) >= 0 {
		t.Errorf("degradation did not shorten recovery: %v vs %v", r.ResetDegradedAt2, r.ResetAt2)
	}
	out := r.Render()
	for _, want := range []string{"Table I", "4/3", "Example 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig1ShapesHold(t *testing.T) {
	r, err := Fig1(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Xs) != 31 {
		t.Fatalf("samples = %d", len(r.Xs))
	}
	// Demand never exceeds its supply line, and touches it somewhere.
	touchA := false
	for i := range r.Xs {
		if r.DemandA[i] > r.SupplyA[i]+1e-9 {
			t.Fatalf("demand above s_min supply at Δ=%v", r.Xs[i])
		}
		if i > 0 && math.Abs(r.DemandA[i]-r.SupplyA[i]) < 1e-9 {
			touchA = true
		}
	}
	if !touchA {
		t.Error("supply line never touched — s_min not tight on the sampled grid")
	}
	if !strings.Contains(r.Render(), "Fig. 1a") {
		t.Error("render missing panel a")
	}
}

func TestFig3ShapesHold(t *testing.T) {
	r, err := Fig3(30, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResetAt2.Eq(rat.FromInt64(6)) || !r.ResetAtSMin.Eq(rat.FromInt64(9)) {
		t.Errorf("Δ_R = %v/%v, want 9 at s_min and 6 at 2", r.ResetAtSMin, r.ResetAt2)
	}
	// Panel (b): Δ_R non-increasing in s once finite, degraded ≤ plain.
	prev := math.Inf(1)
	for i, v := range r.ResetPlain {
		if math.IsNaN(v) {
			continue
		}
		if v > prev+1e-9 {
			t.Fatalf("Δ_R increased with s at index %d", i)
		}
		prev = v
		if d := r.ResetDegraded[i]; !math.IsNaN(d) && d > v+1e-9 {
			t.Fatalf("degraded Δ_R above plain at index %d (%v > %v)", i, d, v)
		}
	}
	if !strings.Contains(r.Render(), "Fig. 3b") {
		t.Error("render missing panel b")
	}
}

func TestFig4ShapesHold(t *testing.T) {
	r, err := Fig4(9, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (a) bound non-decreasing in x for every y; larger y pointwise lower.
	for yi := range r.SBound {
		prev := 0.0
		for xi, v := range r.SBound[yi] {
			if math.IsNaN(v) {
				continue
			}
			if v < prev-1e-9 {
				t.Fatalf("bound decreasing in x at y=%s x=%v", r.YLabels[yi], r.XValues[xi])
			}
			prev = v
			if yi > 0 {
				if hi := r.SBound[yi-1][xi]; !math.IsNaN(hi) && v > hi+1e-9 {
					t.Fatalf("larger y raised the bound at x=%v", r.XValues[xi])
				}
			}
		}
	}
	// (b) larger artificial s_min ⇒ larger reset bound where finite.
	for si := 1; si < len(r.ResetBounds); si++ {
		for k := range r.Speeds {
			lo, hi := r.ResetBounds[si-1][k], r.ResetBounds[si][k]
			if !math.IsNaN(lo) && !math.IsNaN(hi) && hi < lo-1e-9 {
				t.Fatalf("reset bound not monotone in s_min at s=%v", r.Speeds[k])
			}
		}
	}
	if !strings.Contains(r.Render(), "Fig. 4a") {
		t.Error("render missing panel a")
	}
}

func TestFig5ShapesHold(t *testing.T) {
	r, err := Fig5(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// s_min decreases along y (more degradation) for every x.
	for yi := 1; yi < len(r.YGrid); yi++ {
		for xi := range r.XGrid {
			if r.SMin[yi][xi] > r.SMin[yi-1][xi]+1e-9 {
				t.Fatalf("s_min increased with y at x=%v", r.XGrid[xi])
			}
		}
	}
	// Reset time decreases along s for every γ and increases with γ.
	for gi := range r.GammaGrid {
		for si := 1; si < len(r.SpeedGrid); si++ {
			a, b := r.ResetMS[gi][si-1], r.ResetMS[gi][si]
			if !math.IsNaN(a) && !math.IsNaN(b) && b > a+1e-9 {
				t.Fatalf("Δ_R increased with s at γ=%v", r.GammaGrid[gi])
			}
		}
	}
	// Headline: worst recovery at s=2 below 3 s.
	if r.HeadlineRecoveryMS <= 0 || r.HeadlineRecoveryMS >= 3000 {
		t.Errorf("worst recovery at s=2 = %.1f ms, want (0, 3000)", r.HeadlineRecoveryMS)
	}
	if !strings.Contains(r.Render(), "Fig. 5b") {
		t.Error("render missing panel b")
	}
}

func TestFig6ShapesHold(t *testing.T) {
	r, err := Fig6(Fig6Config{SetsPerPoint: 12, UBounds: []float64{0.5, 0.7, 0.9}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SMinDist) != 3 {
		t.Fatalf("points = %d", len(r.SMinDist))
	}
	// Median s_min grows with utilization (y = 2 series).
	medLow := nanIfEmptyMedian(r.SMinDist[0])
	medHigh := nanIfEmptyMedian(r.SMinDist[2])
	if !(medHigh > medLow) {
		t.Errorf("median s_min not increasing: %.3f → %.3f", medLow, medHigh)
	}
	// More degradation lowers the median s_min at the top utilization.
	y15 := r.MedianSMin[0][2]
	y3 := r.MedianSMin[2][2]
	if !math.IsNaN(y15) && !math.IsNaN(y3) && y3 > y15+1e-9 {
		t.Errorf("y=3 median above y=3/2 median (%v > %v)", y3, y15)
	}
	// Faster HI mode shortens recovery: s=3 medians below s=2 (same y).
	for u := range r.UBounds {
		s2, s3 := r.MedianReset[0][u], r.MedianReset[1][u]
		if !math.IsNaN(s2) && !math.IsNaN(s3) && s3 > s2+1e-9 {
			t.Errorf("U=%v: median Δ_R at s=3 above s=2", r.UBounds[u])
		}
	}
	out := r.Render()
	for _, want := range []string{"Fig. 6a", "Fig. 6b", "Fig. 6c", "Fig. 6d"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig7ShapesHold(t *testing.T) {
	// The interesting frontier sits where U_LO + U_HI/γ approaches 1 and
	// s_min straddles 1 — around (0.85, 0.85) with γ = 10 — so the grid
	// must include it.
	r, err := Fig7(Fig7Config{
		SetsPerPoint: 15,
		Grid:         []float64{0.5, 0.85},
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	lowCorner := r.WithSpeedup[0][0]
	if lowCorner < 0.99 {
		t.Errorf("low-utilization corner only %.2f schedulable with speedup", lowCorner)
	}
	// Speedup region dominates the no-speedup region pointwise.
	for li := range r.Grid {
		for hi := range r.Grid {
			if r.WithSpeedup[li][hi]+1e-9 < r.NoSpeedup[li][hi] {
				t.Fatalf("speedup region smaller at (%d,%d)", li, hi)
			}
		}
	}
	// And strictly helps somewhere.
	gain := false
	for li := range r.Grid {
		for hi := range r.Grid {
			if r.WithSpeedup[li][hi] > r.NoSpeedup[li][hi]+1e-9 {
				gain = true
			}
		}
	}
	if !gain {
		t.Error("temporary speedup never helped — suspicious")
	}
	if !strings.Contains(r.Render(), "Fig. 7") {
		t.Error("render missing title")
	}
}

func TestFig2WindowIdentity(t *testing.T) {
	r := Fig2()
	// The rendered window must satisfy eq. (9) on the chosen Δ.
	period := r.Task.Period[1]
	dLO := r.Task.Deadline[0]
	want := r.Delta%period - (period - dLO)
	if r.W != want {
		t.Fatalf("w' = %d, want %d", r.W, want)
	}
	out := r.Render()
	for _, wantStr := range []string{"Fig. 2", "w'(τ, Δ)", "check: ADB_HI"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q", wantStr)
		}
	}
}
