package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/sim"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// ServiceQualityConfig scales the LO-service study.
type ServiceQualityConfig struct {
	Sets    int
	UBound  float64
	Horizon task.Time
	Seed    int64
	// Speed is the HI-mode speed for the speedup-based policies.
	Speed rat.Rat
	// OverrunProb is the per-HI-job overrun probability driving the
	// simulations.
	OverrunProb float64
}

func (c ServiceQualityConfig) withDefaults() ServiceQualityConfig {
	if c.Sets <= 0 {
		c.Sets = 25
	}
	if c.UBound <= 0 {
		c.UBound = 0.6
	}
	if c.Horizon <= 0 {
		c.Horizon = 0 // per-set default below
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.Speed.Sign() <= 0 {
		c.Speed = rat.Two
	}
	if c.OverrunProb <= 0 {
		c.OverrunProb = 0.4
	}
	return c
}

// ServiceQualityResult measures what the paper's mechanism is *for*:
// how much LO-criticality service survives overruns under each policy,
// and what HI-mode speed that service level costs. All simulations run
// the same workloads (paired comparison), and every policy runs at its
// own exact requirement max(1, s_min) so each run is provably miss-free
// — the observed differences are pure service quality and speed cost.
type ServiceQualityResult struct {
	Config   ServiceQualityConfig
	Policies []string
	// LOCompleted[p] is the fraction of released LO jobs that ran to
	// completion under policy p (the rest were dropped at admission or
	// killed at a switch).
	LOCompleted []float64
	// MeanLOResponse[p] is the mean LO-job response time in ticks.
	MeanLOResponse []float64
	// HIEpisodes[p] is the mean number of HI-mode episodes per run.
	HIEpisodes []float64
	// MeanSpeed[p] is the mean HI-mode speed the policy required,
	// max(1, s_min) averaged over the corpus — the price of its service
	// level.
	MeanSpeed []float64
	// CorpusSize is the number of task sets that qualified.
	CorpusSize int
}

// ServiceQuality runs the study.
func ServiceQuality(cfg ServiceQualityConfig) (ServiceQualityResult, error) {
	cfg = cfg.withDefaults()
	res := ServiceQualityResult{Config: cfg}
	for p := Policy(0); p < numPolicies; p++ {
		res.Policies = append(res.Policies, p.String())
	}
	released := make([]float64, numPolicies)
	speedSum := make([]float64, numPolicies)
	completed := make([]float64, numPolicies)
	respSum := make([]float64, numPolicies)
	respN := make([]float64, numPolicies)
	episodes := make([]float64, numPolicies)
	runs := make([]float64, numPolicies)

	rnd := rand.New(rand.NewSource(cfg.Seed))
	params := gen.Defaults()

	for n := 0; n < cfg.Sets*8 && res.CorpusSize < cfg.Sets; n++ {
		base := params.MustSet(rnd, cfg.UBound)

		// Build all four configurations. Each policy runs at its own
		// exact requirement max(1, s_min); a set qualifies when every
		// configuration is LO-mode feasible with a finite exact s_min.
		type conf struct {
			set   task.Set
			speed rat.Rat
		}
		confs := make([]conf, numPolicies)
		ok := true
		for p := Policy(0); p < numPolicies && ok; p++ {
			set := base
			var err error
			switch p {
			case PolicyTerminate:
				set = base.TerminateLO()
			case PolicyDegrade, PolicyCombined:
				set, err = base.DegradeLO(rat.Two)
			}
			if err != nil {
				ok = false
				break
			}
			_, prepared, err := core.MinimalX(set)
			if err != nil {
				ok = false
				break
			}
			sp, err := core.MinSpeedup(prepared)
			if err != nil {
				return res, err
			}
			if !sp.Exact || sp.Speedup.IsInf() {
				ok = false
				break
			}
			speed := rat.Max(rat.One, sp.Speedup)
			// The nominal-speed policies additionally get the study's
			// configured speed when it is higher, mirroring practice.
			if p == PolicySpeedup || p == PolicyCombined {
				speed = rat.Max(speed, cfg.Speed)
			}
			confs[p] = conf{set: prepared, speed: speed}
		}
		if !ok {
			continue
		}
		res.CorpusSize++
		for p := Policy(0); p < numPolicies; p++ {
			speedSum[p] += confs[p].speed.Float64()
		}

		horizon := cfg.Horizon
		if horizon <= 0 {
			horizon = 10 * base.MaxPeriod()
		}
		w := sim.RandomSporadic(rnd, base, horizon, cfg.OverrunProb)
		for p := Policy(0); p < numPolicies; p++ {
			r, err := sim.Run(confs[p].set, w, sim.Config{
				Speedup:     confs[p].speed,
				CollectJobs: true,
			})
			if err != nil {
				return res, err
			}
			if len(r.Misses) != 0 {
				return res, fmt.Errorf("experiments: analytically safe set missed under %v", Policy(p))
			}
			runs[p]++
			episodes[p] += float64(len(r.Episodes))
			loDone := 0
			for _, j := range r.Jobs {
				if confs[p].set[j.Task].Crit != task.LO {
					continue
				}
				loDone++
				respSum[p] += j.ResponseTime().Float64()
				respN[p]++
			}
			completed[p] += float64(loDone)
			// Released LO jobs = completed + dropped + killed (drops
			// and kills only ever affect LO jobs).
			released[p] += float64(loDone + r.Dropped + r.Killed)
		}
	}
	if res.CorpusSize == 0 {
		return res, fmt.Errorf("experiments: no qualifying sets at U = %.2f", cfg.UBound)
	}
	for p := Policy(0); p < numPolicies; p++ {
		if released[p] > 0 {
			res.LOCompleted = append(res.LOCompleted, completed[p]/released[p])
		} else {
			res.LOCompleted = append(res.LOCompleted, 1)
		}
		if respN[p] > 0 {
			res.MeanLOResponse = append(res.MeanLOResponse, respSum[p]/respN[p])
		} else {
			res.MeanLOResponse = append(res.MeanLOResponse, 0)
		}
		res.HIEpisodes = append(res.HIEpisodes, episodes[p]/runs[p])
		res.MeanSpeed = append(res.MeanSpeed, speedSum[p]/float64(res.CorpusSize))
	}
	return res, nil
}

// Render emits the comparison table.
func (r ServiceQualityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LO-service quality under overruns (U = %.2f, %d paired sets, overrun p = %.2f)\n",
		r.Config.UBound, r.CorpusSize, r.Config.OverrunProb)
	headers := []string{"policy", "LO jobs completed", "mean LO response [ticks]", "HI episodes/run", "mean speed used"}
	var rows [][]string
	for p := range r.Policies {
		rows = append(rows, []string{
			r.Policies[p],
			fmt.Sprintf("%.1f%%", 100*r.LOCompleted[p]),
			fmt.Sprintf("%.1f", r.MeanLOResponse[p]),
			fmt.Sprintf("%.1f", r.HIEpisodes[p]),
			fmt.Sprintf("%.2fx", r.MeanSpeed[p]),
		})
	}
	b.WriteString(textplot.Table(headers, rows))
	return b.String()
}
