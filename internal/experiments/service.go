package experiments

import (
	"fmt"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/sim"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// ServiceQualityConfig scales the LO-service study.
type ServiceQualityConfig struct {
	Sets    int
	UBound  float64
	Horizon task.Time
	Seed    int64
	// Speed is the HI-mode speed for the speedup-based policies.
	Speed rat.Rat
	// OverrunProb is the per-HI-job overrun probability driving the
	// simulations.
	OverrunProb float64
	// Workers bounds the sweep parallelism (0 = all cores). Output is
	// identical for every worker count.
	Workers int `json:"-"`
}

func (c ServiceQualityConfig) withDefaults() ServiceQualityConfig {
	if c.Sets <= 0 {
		c.Sets = 25
	}
	if c.UBound <= 0 {
		c.UBound = 0.6
	}
	if c.Horizon <= 0 {
		c.Horizon = 0 // per-set default below
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.Speed.Sign() <= 0 {
		c.Speed = rat.Two
	}
	if c.OverrunProb <= 0 {
		c.OverrunProb = 0.4
	}
	return c
}

// ServiceQualityResult measures what the paper's mechanism is *for*:
// how much LO-criticality service survives overruns under each policy,
// and what HI-mode speed that service level costs. All simulations run
// the same workloads (paired comparison), and every policy runs at its
// own exact requirement max(1, s_min) so each run is provably miss-free
// — the observed differences are pure service quality and speed cost.
type ServiceQualityResult struct {
	Config   ServiceQualityConfig
	Policies []string
	// LOCompleted[p] is the fraction of released LO jobs that ran to
	// completion under policy p (the rest were dropped at admission or
	// killed at a switch).
	LOCompleted []float64
	// MeanLOResponse[p] is the mean LO-job response time in ticks.
	MeanLOResponse []float64
	// HIEpisodes[p] is the mean number of HI-mode episodes per run.
	HIEpisodes []float64
	// MeanSpeed[p] is the mean HI-mode speed the policy required,
	// max(1, s_min) averaged over the corpus — the price of its service
	// level.
	MeanSpeed []float64
	// CorpusSize is the number of task sets that qualified.
	CorpusSize int
}

// serviceSetResult is one fully-processed corpus candidate: either
// disqualified (ok = false) or the paired simulation measurements of
// all four policies.
type serviceSetResult struct {
	ok        bool
	speed     [numPolicies]float64
	episodes  [numPolicies]float64
	completed [numPolicies]float64
	released  [numPolicies]float64
	respSum   [numPolicies]float64
	respN     [numPolicies]float64
}

// ServiceQuality runs the study. Corpus candidates are generated,
// qualified, and simulated in parallel (Config.Workers), each from its
// own random substream; the reduction admits the first Config.Sets
// qualifying candidates in index order, so the result is identical for
// every worker count. Candidates are processed in chunks so that a run
// with a high qualification rate does not fan out far past the corpus
// target.
func ServiceQuality(cfg ServiceQualityConfig) (ServiceQualityResult, error) {
	cfg = cfg.withDefaults()
	res := ServiceQualityResult{Config: cfg}
	for p := Policy(0); p < numPolicies; p++ {
		res.Policies = append(res.Policies, p.String())
	}
	released := make([]float64, numPolicies)
	speedSum := make([]float64, numPolicies)
	completed := make([]float64, numPolicies)
	respSum := make([]float64, numPolicies)
	respN := make([]float64, numPolicies)
	episodes := make([]float64, numPolicies)
	runs := make([]float64, numPolicies)

	params := gen.Defaults()

	analyzeCandidate := func(n int) (*serviceSetResult, error) {
		rnd := gen.SubRand(cfg.Seed, 0, n)
		base := params.MustSet(rnd, cfg.UBound)

		// Build all four configurations. Each policy runs at its own
		// exact requirement max(1, s_min); a set qualifies when every
		// configuration is LO-mode feasible with a finite exact s_min.
		type conf struct {
			set   task.Set
			speed rat.Rat
		}
		confs := make([]conf, numPolicies)
		for p := Policy(0); p < numPolicies; p++ {
			set := base
			var err error
			switch p {
			case PolicyTerminate:
				set = base.TerminateLO()
			case PolicyDegrade, PolicyCombined:
				set, err = base.DegradeLO(rat.Two)
			}
			if err != nil {
				return nil, nil
			}
			_, prepared, err := core.MinimalX(set)
			if err != nil {
				return nil, nil
			}
			sp, err := core.MinSpeedup(prepared)
			if err != nil {
				return nil, err
			}
			if !sp.Exact || sp.Speedup.IsInf() {
				return nil, nil
			}
			speed := rat.Max(rat.One, sp.Speedup)
			// The nominal-speed policies additionally get the study's
			// configured speed when it is higher, mirroring practice.
			if p == PolicySpeedup || p == PolicyCombined {
				speed = rat.Max(speed, cfg.Speed)
			}
			confs[p] = conf{set: prepared, speed: speed}
		}

		out := &serviceSetResult{ok: true}
		for p := Policy(0); p < numPolicies; p++ {
			out.speed[p] = confs[p].speed.Float64()
		}
		horizon := cfg.Horizon
		if horizon <= 0 {
			horizon = 10 * base.MaxPeriod()
		}
		w := sim.RandomSporadic(rnd, base, horizon, cfg.OverrunProb)
		for p := Policy(0); p < numPolicies; p++ {
			r, err := sim.Run(confs[p].set, w, sim.Config{
				Speedup:     confs[p].speed,
				CollectJobs: true,
			})
			if err != nil {
				return nil, err
			}
			if len(r.Misses) != 0 {
				return nil, fmt.Errorf("experiments: analytically safe set missed under %v", Policy(p))
			}
			out.episodes[p] = float64(len(r.Episodes))
			loDone := 0
			for _, j := range r.Jobs {
				if confs[p].set[j.Task].Crit != task.LO {
					continue
				}
				loDone++
				out.respSum[p] += j.ResponseTime().Float64()
				out.respN[p]++
			}
			out.completed[p] = float64(loDone)
			// Released LO jobs = completed + dropped + killed (drops
			// and kills only ever affect LO jobs).
			out.released[p] = float64(loDone + r.Dropped + r.Killed)
		}
		return out, nil
	}

	// The corpus admits the first Sets qualifying candidates among the
	// first Sets*8 indices — exactly the sequential rejection-sampling
	// semantics, chunked so parallel overdraw stays bounded.
	budget := cfg.Sets * 8
	chunk := cfg.Sets
	if w := 2 * par.Workers(cfg.Workers); chunk < w {
		chunk = w
	}
	for start := 0; start < budget && res.CorpusSize < cfg.Sets; start += chunk {
		end := start + chunk
		if end > budget {
			end = budget
		}
		results, err := par.Map(end-start, cfg.Workers, func(j int) (*serviceSetResult, error) {
			return analyzeCandidate(start + j)
		})
		if err != nil {
			return res, err
		}
		for _, r := range results {
			if r == nil || !r.ok || res.CorpusSize >= cfg.Sets {
				continue
			}
			res.CorpusSize++
			for p := Policy(0); p < numPolicies; p++ {
				speedSum[p] += r.speed[p]
				episodes[p] += r.episodes[p]
				completed[p] += r.completed[p]
				released[p] += r.released[p]
				respSum[p] += r.respSum[p]
				respN[p] += r.respN[p]
				runs[p]++
			}
		}
	}
	if res.CorpusSize == 0 {
		return res, fmt.Errorf("experiments: no qualifying sets at U = %.2f", cfg.UBound)
	}
	for p := Policy(0); p < numPolicies; p++ {
		if released[p] > 0 {
			res.LOCompleted = append(res.LOCompleted, completed[p]/released[p])
		} else {
			res.LOCompleted = append(res.LOCompleted, 1)
		}
		if respN[p] > 0 {
			res.MeanLOResponse = append(res.MeanLOResponse, respSum[p]/respN[p])
		} else {
			res.MeanLOResponse = append(res.MeanLOResponse, 0)
		}
		res.HIEpisodes = append(res.HIEpisodes, episodes[p]/runs[p])
		res.MeanSpeed = append(res.MeanSpeed, speedSum[p]/float64(res.CorpusSize))
	}
	return res, nil
}

// Render emits the comparison table.
func (r ServiceQualityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LO-service quality under overruns (U = %.2f, %d paired sets, overrun p = %.2f)\n",
		r.Config.UBound, r.CorpusSize, r.Config.OverrunProb)
	headers := []string{"policy", "LO jobs completed", "mean LO response [ticks]", "HI episodes/run", "mean speed used"}
	var rows [][]string
	for p := range r.Policies {
		rows = append(rows, []string{
			r.Policies[p],
			fmt.Sprintf("%.1f%%", 100*r.LOCompleted[p]),
			fmt.Sprintf("%.1f", r.MeanLOResponse[p]),
			fmt.Sprintf("%.1f", r.HIEpisodes[p]),
			fmt.Sprintf("%.2fx", r.MeanSpeed[p]),
		})
	}
	b.WriteString(textplot.Table(headers, rows))
	return b.String()
}
