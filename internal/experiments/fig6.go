package experiments

import (
	"fmt"
	"math"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/stats"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// Fig6Config scales the synthetic-task-set study of Fig. 6. The paper
// uses 500 task sets per utilization point.
type Fig6Config struct {
	SetsPerPoint int
	UBounds      []float64
	Seed         int64
	// Params defaults to gen.Defaults() (the Fig. 6 caption values).
	Params *gen.Params
	// NoPlan disables the compiled columnar demand plans — the ablation
	// arm for the plan-vs-scalar cost comparison. Output is identical
	// either way (the plan evaluates the same closed forms; pinned by
	// TestFig6PlanAblationIdentical).
	NoPlan bool `json:"noPlan,omitempty"`
	// Workers bounds the sweep parallelism (0 = all cores). Output is
	// identical for every worker count.
	Workers int `json:"-"`
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.SetsPerPoint <= 0 {
		c.SetsPerPoint = 100
	}
	if len(c.UBounds) == 0 {
		c.UBounds = []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.Params == nil {
		p := gen.Defaults()
		c.Params = &p
	}
	return c
}

// Fig6Result reproduces Fig. 6:
// (a) the distribution of the minimum speedup s_min per system
// utilization (y = 2);
// (b) the median s_min per utilization for several degradation factors y;
// (c) the distribution of the resetting time Δ_R in milliseconds per
// utilization (y = 2, s = 3);
// (d) the median Δ_R per utilization for several (s, y) combinations.
type Fig6Result struct {
	Config Fig6Config

	UBounds []float64
	// Panel (a)/(c) raw distributions, indexed by utilization point.
	SMinDist  [][]float64
	ResetDist [][]float64 // milliseconds
	// Panel (b): YLabels[i] ↔ MedianSMin[i][uIdx].
	YLabels    []string
	MedianSMin [][]float64
	// Panel (d): SYLabels[i] ↔ MedianReset[i][uIdx] (milliseconds).
	SYLabels    []string
	MedianReset [][]float64
	// Infeasible counts sets for which no x made LO mode schedulable
	// (regenerated, matching the paper's setup where x always exists).
	Infeasible int
}

// fig6SetResult is the per-task-set unit of work: one generated base
// set, fully analyzed. NaN marks a panel entry the set did not produce
// (infeasible for that y, or an infinite Δ_R).
type fig6SetResult struct {
	infeasible int // regenerated LO-infeasible draws
	smin       float64
	reset      float64 // ms; NaN if infinite
	sminByY    []float64
	resetBySY  []float64
}

// Fig6 runs the study. For every generated base set, LO tasks are
// degraded by y, HI virtual deadlines get the minimal feasible x, then
// the exact analyses run. Sets are analyzed in parallel (Config.Workers)
// with one random substream per (utilization point, set index), and the
// per-set results are reduced in index order — the rendered output does
// not depend on the worker count.
func Fig6(cfg Fig6Config) (Fig6Result, error) {
	cfg = cfg.withDefaults()
	res := Fig6Result{Config: cfg, UBounds: cfg.UBounds}

	ys := []rat.Rat{rat.New(3, 2), rat.Two, rat.FromInt64(3)}
	for _, y := range ys {
		res.YLabels = append(res.YLabels, "y="+y.String())
	}
	sy := []struct {
		s, y rat.Rat
	}{
		{rat.Two, rat.Two},
		{rat.FromInt64(3), rat.Two},
		{rat.FromInt64(3), rat.FromInt64(3)},
	}
	for _, c := range sy {
		res.SYLabels = append(res.SYLabels, fmt.Sprintf("s=%v,y=%v", c.s, c.y))
	}
	res.MedianSMin = make([][]float64, len(ys))
	res.MedianReset = make([][]float64, len(sy))

	analyzeSet := func(pi, n int) (fig6SetResult, error) {
		rnd := gen.SubRand(cfg.Seed, pi, n)
		// One walker arena per set, and each Theorem-2 walk warm-starts
		// the next with its witness Δ (the per-y preparations of one set
		// share their decisive interval). Both stay inside this work
		// item, so the reduction order — and hence the -workers N output
		// — is untouched; the results themselves are bit-identical to
		// cold walks (core.Options.WarmWitness).
		scratch := new(core.Scratch)
		var warm core.SpeedupResult
		speedup := func(set task.Set) (core.SpeedupResult, error) {
			sp, err := core.MinSpeedupOpts(set, core.Options{
				Scratch:     scratch,
				WarmWitness: warm.WitnessDelta,
				NoPlan:      cfg.NoPlan,
			})
			if err == nil {
				warm = sp
			}
			return sp, err
		}
		withScratch := core.Options{Scratch: scratch, NoPlan: cfg.NoPlan}
		out := fig6SetResult{
			sminByY:   make([]float64, len(ys)),
			resetBySY: make([]float64, len(sy)),
		}
		// Regenerate until the configuration is analyzable with the
		// reference degradation y = 2 (matches the paper's "x set to
		// the minimum to guarantee LO mode schedulability").
		var base task2
		for {
			cand := cfg.Params.MustSet(rnd, cfg.UBounds[pi])
			shaped, err := cand.DegradeLO(rat.Two)
			if err != nil {
				return out, err
			}
			if _, prepared, err := core.MinimalX(shaped); err == nil {
				base = task2{raw: cand, y2: prepared}
				break
			}
			out.infeasible++
		}

		// Panels (a) and (c) at y = 2 (and s = 3 for Δ_R).
		sp, err := speedup(base.y2)
		if err != nil {
			return out, err
		}
		out.smin = sp.Speedup.Float64()
		rr, err := core.ResetTimeOpts(base.y2, rat.FromInt64(3), withScratch)
		if err != nil {
			return out, err
		}
		out.reset = nan()
		if !rr.Reset.IsInf() {
			out.reset = rr.Reset.Float64() / gen.TicksPerMS
		}

		// Panel (b): s_min per y.
		for yi, y := range ys {
			out.sminByY[yi] = nan()
			prepared, err := base.prepared(y)
			if err != nil {
				continue // this y infeasible for this set
			}
			spy, err := speedup(prepared)
			if err != nil {
				return out, err
			}
			out.sminByY[yi] = spy.Speedup.Float64()
		}
		// Panel (d): Δ_R per (s, y).
		for ci, c := range sy {
			out.resetBySY[ci] = nan()
			prepared, err := base.prepared(c.y)
			if err != nil {
				continue
			}
			rry, err := core.ResetTimeOpts(prepared, c.s, withScratch)
			if err != nil {
				return out, err
			}
			if !rry.Reset.IsInf() {
				out.resetBySY[ci] = rry.Reset.Float64() / gen.TicksPerMS
			}
		}
		return out, nil
	}

	total := len(cfg.UBounds) * cfg.SetsPerPoint
	sets, err := par.Map(total, cfg.Workers, func(k int) (fig6SetResult, error) {
		return analyzeSet(k/cfg.SetsPerPoint, k%cfg.SetsPerPoint)
	})
	if err != nil {
		return res, err
	}

	for pi := range cfg.UBounds {
		var sminBox, resetBox []float64
		sminByY := make([][]float64, len(ys))
		resetBySY := make([][]float64, len(sy))
		for n := 0; n < cfg.SetsPerPoint; n++ {
			s := sets[pi*cfg.SetsPerPoint+n]
			res.Infeasible += s.infeasible
			sminBox = append(sminBox, s.smin)
			if !math.IsNaN(s.reset) {
				resetBox = append(resetBox, s.reset)
			}
			for yi := range ys {
				if !math.IsNaN(s.sminByY[yi]) {
					sminByY[yi] = append(sminByY[yi], s.sminByY[yi])
				}
			}
			for ci := range sy {
				if !math.IsNaN(s.resetBySY[ci]) {
					resetBySY[ci] = append(resetBySY[ci], s.resetBySY[ci])
				}
			}
		}
		res.SMinDist = append(res.SMinDist, sminBox)
		res.ResetDist = append(res.ResetDist, resetBox)
		for yi := range ys {
			res.MedianSMin[yi] = append(res.MedianSMin[yi], nanIfEmptyMedian(sminByY[yi]))
		}
		for ci := range sy {
			res.MedianReset[ci] = append(res.MedianReset[ci], nanIfEmptyMedian(resetBySY[ci]))
		}
	}
	return res, nil
}

// task2 caches the y = 2 preparation and re-derives others on demand.
type task2 struct {
	raw task.Set
	y2  task.Set
}

func (t task2) prepared(y rat.Rat) (task.Set, error) {
	if y.Eq(rat.Two) {
		return t.y2, nil
	}
	shaped, err := t.raw.DegradeLO(y)
	if err != nil {
		return nil, err
	}
	_, prepared, err := core.MinimalX(shaped)
	return prepared, err
}

func nan() float64 { return math.NaN() }

// Render emits all four panels.
func (r Fig6Result) Render() string {
	var b strings.Builder
	var boxA, boxC []textplot.BoxRow
	for i, u := range r.UBounds {
		if len(r.SMinDist[i]) > 0 {
			boxA = append(boxA, textplot.BoxRow{
				Label:   fmt.Sprintf("U=%.2f", u),
				Summary: stats.Summarize(r.SMinDist[i]),
			})
		}
		if len(r.ResetDist[i]) > 0 {
			boxC = append(boxC, textplot.BoxRow{
				Label:   fmt.Sprintf("U=%.2f", u),
				Summary: stats.Summarize(r.ResetDist[i]),
			})
		}
	}
	b.WriteString(textplot.Boxes("Fig. 6a — distribution of s_min per utilization (y = 2)", boxA, 56))
	b.WriteByte('\n')

	var seriesB []textplot.Series
	for i, lbl := range r.YLabels {
		seriesB = append(seriesB, textplot.Series{Name: lbl, Ys: r.MedianSMin[i]})
	}
	b.WriteString(textplot.Lines("Fig. 6b — median s_min vs. utilization (degradation impact)",
		r.UBounds, seriesB, 56, 12))
	b.WriteByte('\n')

	b.WriteString(textplot.Boxes("Fig. 6c — distribution of Δ_R [ms] per utilization (y = 2, s = 3)", boxC, 56))
	b.WriteByte('\n')

	var seriesD []textplot.Series
	for i, lbl := range r.SYLabels {
		seriesD = append(seriesD, textplot.Series{Name: lbl, Ys: r.MedianReset[i]})
	}
	b.WriteString(textplot.Lines("Fig. 6d — median Δ_R [ms] vs. utilization (speedup & degradation impact)",
		r.UBounds, seriesD, 56, 12))
	if r.Infeasible > 0 {
		fmt.Fprintf(&b, "\n(%d LO-infeasible draws regenerated)\n", r.Infeasible)
	}
	return b.String()
}

func nanIfEmptyMedian(vals []float64) float64 {
	if len(vals) == 0 {
		return nan()
	}
	return stats.Quantile(vals, 0.5)
}
