// Package experiments reproduces every table and figure of the paper's
// evaluation. Each driver returns a structured result whose Render method
// emits the fixed-width text that cmd/mcs-experiments prints and that
// EXPERIMENTS.md quotes. Drivers are deterministic given their
// configuration (seeded randomness, exact rational analysis).
package experiments

import (
	"fmt"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
)

// Table1Result reproduces Table I together with the Example-1 and
// Example-2 numbers derived from it.
type Table1Result struct {
	// SMin is the exact minimum HI-mode speedup of the undegraded set
	// (Example 1: 4/3).
	SMin rat.Rat
	// SMinDegraded is the exact minimum speedup with τ₂ degraded to
	// D(HI)=15, T(HI)=20 (Example 1: < 1).
	SMinDegraded rat.Rat
	// ResetAt2 is Δ_R at s = 2 on the undegraded set (Example 2: 6).
	ResetAt2 rat.Rat
	// ResetAtSMin is Δ_R at s = s_min on the undegraded set.
	ResetAtSMin rat.Rat
	// ResetDegradedAt2 is Δ_R at s = 2 with degradation.
	ResetDegradedAt2 rat.Rat
	// TableText is the Table-I parameter listing.
	TableText string
}

// Table1 computes the running example's numbers. The four analyses that
// share no inputs run through the sweep engine; Δ_R at s_min needs the
// Example-1 result and follows sequentially.
func Table1() (Table1Result, error) {
	base := examplesets.TableI()
	deg := examplesets.TableIDegraded()

	var out Table1Result
	out.TableText = base.Table()

	err := par.ForEach(4, 0, func(i int) error {
		switch i {
		case 0:
			sp, err := core.MinSpeedup(base)
			if err != nil {
				return err
			}
			out.SMin = sp.Speedup
		case 1:
			sp, err := core.MinSpeedup(deg)
			if err != nil {
				return err
			}
			out.SMinDegraded = sp.Speedup
		case 2:
			rr, err := core.ResetTime(base, rat.Two)
			if err != nil {
				return err
			}
			out.ResetAt2 = rr.Reset
		case 3:
			rr, err := core.ResetTime(deg, rat.Two)
			if err != nil {
				return err
			}
			out.ResetDegradedAt2 = rr.Reset
		}
		return nil
	})
	if err != nil {
		return out, err
	}

	rs, err := core.ResetTime(base, out.SMin)
	if err != nil {
		return out, err
	}
	out.ResetAtSMin = rs.Reset
	return out, nil
}

// Render emits the table and derived quantities.
func (r Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I — example task set (reconstruction; see DESIGN.md)\n")
	b.WriteString(r.TableText)
	fmt.Fprintf(&b, "\nExample 1: s_min            = %v (%.4f)   [paper: 4/3]\n", r.SMin, r.SMin.Float64())
	fmt.Fprintf(&b, "           s_min degraded   = %v (%.4f)   [paper: < 1, system may slow down]\n",
		r.SMinDegraded, r.SMinDegraded.Float64())
	fmt.Fprintf(&b, "Example 2: Δ_R at s=2       = %v            [paper: 6]\n", r.ResetAt2)
	fmt.Fprintf(&b, "           Δ_R at s=s_min   = %v\n", r.ResetAtSMin)
	fmt.Fprintf(&b, "           Δ_R degraded s=2 = %v            [paper: further reduced]\n", r.ResetDegradedAt2)
	return b.String()
}
