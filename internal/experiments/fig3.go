package experiments

import (
	"fmt"
	"math"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/dbf"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// Fig3Result reproduces Fig. 3: (a) the worst-case arrived demand bound
// of the Table-I set against supply lines at two speeds (visualizing the
// resetting-time crossings of Example 2), and (b) the parametric trend of
// Δ_R against the HI-mode speedup s, with and without degradation.
type Fig3Result struct {
	// Panel (a): arrived demand over [0, horizon] and supply at the two
	// Example-2 speeds.
	Horizon               task.Time
	Xs                    []float64
	ADB                   []float64
	SupplySMin, Supply2   []float64
	ResetAtSMin, ResetAt2 rat.Rat
	SMin                  rat.Rat
	// Panel (b): Δ_R as a function of s for both variants. NaN marks
	// infinite resetting times (s at or below the HI-mode utilization).
	Speeds                    []float64
	ResetPlain, ResetDegraded []float64
}

// Fig3 computes both panels. speedSteps controls the s-axis resolution of
// panel (b); speeds sweep (U_HI, 3]. workers bounds the sweep parallelism
// (0 = all cores); the output is identical for every worker count.
func Fig3(horizon task.Time, speedSteps, workers int) (Fig3Result, error) {
	if horizon <= 0 {
		horizon = 30
	}
	if speedSteps <= 1 {
		speedSteps = 30
	}
	res := Fig3Result{Horizon: horizon}
	base := examplesets.TableI()
	deg := examplesets.TableIDegraded()

	sp, err := core.MinSpeedup(base)
	if err != nil {
		return res, err
	}
	res.SMin = sp.Speedup

	rAtS, err := core.ResetTime(base, res.SMin)
	if err != nil {
		return res, err
	}
	res.ResetAtSMin = rAtS.Reset
	rAt2, err := core.ResetTime(base, rat.Two)
	if err != nil {
		return res, err
	}
	res.ResetAt2 = rAt2.Reset

	for d := task.Time(0); d <= horizon; d++ {
		x := float64(d)
		res.Xs = append(res.Xs, x)
		res.ADB = append(res.ADB, float64(dbf.SetADB(base, d)))
		res.SupplySMin = append(res.SupplySMin, res.SMin.Float64()*x)
		res.Supply2 = append(res.Supply2, 2*x)
	}

	// Panel (b): sweep s from just above U_HI (where Δ_R diverges) to 3,
	// one reset analysis pair per sweep point.
	uHI := base.Util(task.HI).Float64()
	type resetPoint struct {
		s, plain, degraded float64
	}
	points, err := par.Map(speedSteps, workers, func(i int) (resetPoint, error) {
		s := uHI + 0.05 + (3.0-uHI-0.05)*float64(i)/float64(speedSteps-1)
		speed := rat.FromFloat(s, 1<<20)
		pt := resetPoint{s: s, plain: math.NaN(), degraded: math.NaN()}
		rr, err := core.ResetTime(base, speed)
		if err != nil {
			return pt, err
		}
		if !rr.Reset.IsInf() {
			pt.plain = rr.Reset.Float64()
		}
		rd, err := core.ResetTime(deg, speed)
		if err != nil {
			return pt, err
		}
		if !rd.Reset.IsInf() {
			pt.degraded = rd.Reset.Float64()
		}
		return pt, nil
	})
	if err != nil {
		return res, err
	}
	for _, pt := range points {
		res.Speeds = append(res.Speeds, pt.s)
		res.ResetPlain = append(res.ResetPlain, pt.plain)
		res.ResetDegraded = append(res.ResetDegraded, pt.degraded)
	}
	return res, nil
}

// Render emits both panels.
func (r Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString(textplot.Lines(
		fmt.Sprintf("Fig. 3a — arrived demand vs. supply (Δ_R: %v at s=%v, %v at s=2)",
			r.ResetAtSMin, r.SMin, r.ResetAt2),
		r.Xs,
		[]textplot.Series{
			{Name: "Σ ADB_HI(Δ)", Ys: r.ADB},
			{Name: "s_min·Δ", Ys: r.SupplySMin},
			{Name: "2·Δ", Ys: r.Supply2},
		}, 64, 16))
	b.WriteByte('\n')
	b.WriteString(textplot.Lines(
		"Fig. 3b — service resetting time vs. HI-mode speedup",
		r.Speeds,
		[]textplot.Series{
			{Name: "Δ_R no degradation", Ys: r.ResetPlain},
			{Name: "Δ_R degraded", Ys: r.ResetDegraded},
		}, 64, 16))
	return b.String()
}
