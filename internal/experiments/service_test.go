package experiments

import (
	"strings"
	"testing"
)

func TestServiceQuality(t *testing.T) {
	r, err := ServiceQuality(ServiceQualityConfig{Sets: 8, UBound: 0.55, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if r.CorpusSize == 0 {
		t.Fatal("empty corpus")
	}
	idx := map[string]int{}
	for i, p := range r.Policies {
		idx[p] = i
	}
	// The speedup-based full-service policy completes every released LO
	// job (nothing is ever dropped or killed); termination completes the
	// fewest.
	full := r.LOCompleted[idx["speedup"]]
	term := r.LOCompleted[idx["terminate"]]
	if full < 0.999 {
		t.Errorf("full-service completion %.3f, want ~1", full)
	}
	if term > full+1e-9 {
		t.Errorf("termination completes more than full service (%.3f > %.3f)", term, full)
	}
	// Degradation sits between termination and full service.
	deg := r.LOCompleted[idx["degrade(y=2)"]]
	if deg < term-1e-9 || deg > full+1e-9 {
		t.Errorf("degradation completion %.3f outside [%.3f, %.3f]", deg, term, full)
	}
	for p := range r.Policies {
		if r.LOCompleted[p] < 0 || r.LOCompleted[p] > 1 {
			t.Fatalf("completion fraction %v out of range", r.LOCompleted[p])
		}
		if r.MeanLOResponse[p] < 0 {
			t.Fatalf("negative mean response")
		}
	}
	out := r.Render()
	for _, want := range []string{"LO-service quality", "terminate", "LO jobs completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
