package experiments

import (
	"fmt"
	"math"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/stats"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// AblationConfig scales the policy-ablation study.
type AblationConfig struct {
	SetsPerPoint int
	UBounds      []float64
	Seed         int64
	// Speed is the HI-mode speed the speedup-based policies may use
	// (default 2, the turbo ceiling the paper cites).
	Speed rat.Rat
	// Workers bounds the sweep parallelism (0 = all cores). Output is
	// identical for every worker count.
	Workers int `json:"-"`
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.SetsPerPoint <= 0 {
		c.SetsPerPoint = 50
	}
	if len(c.UBounds) == 0 {
		c.UBounds = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.Speed.Sign() <= 0 {
		c.Speed = rat.Two
	}
	return c
}

// Policy identifies one way of reacting to overrun in the ablation.
type Policy int

// The four reactions the paper's introduction contrasts.
const (
	// PolicyTerminate drops all LO tasks at the switch (classical
	// EDF-VD-style reaction; eq. (3)), nominal speed.
	PolicyTerminate Policy = iota
	// PolicyDegrade degrades LO service by y = 2 (eq. (14)), nominal
	// speed — the reference [6] reaction.
	PolicyDegrade
	// PolicySpeedup keeps full LO service and overclocks to Speed —
	// the paper's headline mechanism in isolation.
	PolicySpeedup
	// PolicyCombined degrades by y = 2 and overclocks to Speed — the
	// configuration the paper's experiments use.
	PolicyCombined
	numPolicies
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyTerminate:
		return "terminate"
	case PolicyDegrade:
		return "degrade(y=2)"
	case PolicySpeedup:
		return "speedup"
	case PolicyCombined:
		return "speedup+degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AblationResult compares the four policies over a shared corpus:
// which fraction of random task sets each renders schedulable, and the
// median service-disruption time (Δ_R at the policy's speed) among the
// sets it accepts.
type AblationResult struct {
	Config   AblationConfig
	UBounds  []float64
	Policies []string
	// SchedFrac[p][u] is the schedulable fraction of policy p at
	// utilization point u; MedianResetMS[p][u] the median Δ_R (ms) over
	// its accepted sets (NaN when it accepted none).
	SchedFrac     [][]float64
	MedianResetMS [][]float64
}

// Ablation runs the study: every generated base set is evaluated under
// all four policies (same corpus, so the comparison is paired). A policy
// "accepts" a set when the configuration is LO-mode schedulable for some
// x and HI-mode schedulable at the policy's speed.
func Ablation(cfg AblationConfig) (AblationResult, error) {
	cfg = cfg.withDefaults()
	res := AblationResult{Config: cfg, UBounds: cfg.UBounds}
	for p := Policy(0); p < numPolicies; p++ {
		res.Policies = append(res.Policies, p.String())
	}
	res.SchedFrac = make([][]float64, numPolicies)
	res.MedianResetMS = make([][]float64, numPolicies)

	params := gen.Defaults()

	configure := func(base task.Set, p Policy) (task.Set, rat.Rat, error) {
		speed := rat.One
		set := base
		var err error
		switch p {
		case PolicyTerminate:
			set = base.TerminateLO()
		case PolicyDegrade:
			set, err = base.DegradeLO(rat.Two)
		case PolicySpeedup:
			speed = cfg.Speed
		case PolicyCombined:
			speed = cfg.Speed
			set, err = base.DegradeLO(rat.Two)
		}
		return set, speed, err
	}

	// One unit of work per (utilization point, set index): a generated
	// base set evaluated under all four policies (paired corpus).
	type setResult struct {
		accepted [numPolicies]bool
		reset    [numPolicies]float64 // ms; NaN = rejected or infinite
	}
	analyzeSet := func(ui, n int) (setResult, error) {
		rnd := gen.SubRand(cfg.Seed, ui, n)
		base := params.MustSet(rnd, cfg.UBounds[ui])
		var out setResult
		for p := Policy(0); p < numPolicies; p++ {
			out.reset[p] = math.NaN()
			set, speed, err := configure(base, p)
			if err != nil {
				return out, err
			}
			_, prepared, err := core.MinimalX(set)
			if err != nil {
				continue // LO-mode infeasible under this policy
			}
			sp, err := core.MinSpeedup(prepared)
			if err != nil {
				return out, err
			}
			if sp.Speedup.Cmp(speed) > 0 {
				continue
			}
			out.accepted[p] = true
			// Disruption: how long until LO service is back to
			// normal. Use the policy's speed; for nominal-speed
			// policies this is still the Corollary-5 idle bound.
			rr, err := core.ResetTime(prepared, speed)
			if err != nil {
				return out, err
			}
			if !rr.Reset.IsInf() {
				out.reset[p] = rr.Reset.Float64() / gen.TicksPerMS
			}
		}
		return out, nil
	}

	sets, err := par.Map(len(cfg.UBounds)*cfg.SetsPerPoint, cfg.Workers,
		func(k int) (setResult, error) {
			return analyzeSet(k/cfg.SetsPerPoint, k%cfg.SetsPerPoint)
		})
	if err != nil {
		return res, err
	}

	for ui := range cfg.UBounds {
		accepted := make([]int, numPolicies)
		resets := make([][]float64, numPolicies)
		for n := 0; n < cfg.SetsPerPoint; n++ {
			s := sets[ui*cfg.SetsPerPoint+n]
			for p := Policy(0); p < numPolicies; p++ {
				if s.accepted[p] {
					accepted[p]++
				}
				if !math.IsNaN(s.reset[p]) {
					resets[p] = append(resets[p], s.reset[p])
				}
			}
		}
		for p := Policy(0); p < numPolicies; p++ {
			res.SchedFrac[p] = append(res.SchedFrac[p],
				float64(accepted[p])/float64(cfg.SetsPerPoint))
			med := math.NaN()
			if len(resets[p]) > 0 {
				med = stats.Quantile(resets[p], 0.5)
			}
			res.MedianResetMS[p] = append(res.MedianResetMS[p], med)
		}
	}
	return res, nil
}

// Render emits the comparison as a table plus two line charts.
func (r AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Policy ablation — schedulable fraction (top) and median Δ_R [ms] (bottom)\n")
	headers := append([]string{"U_bound"}, r.Policies...)
	var rows [][]string
	for u := range r.UBounds {
		row := []string{fmt.Sprintf("%.2f", r.UBounds[u])}
		for p := range r.Policies {
			row = append(row, fmt.Sprintf("%.0f%%", 100*r.SchedFrac[p][u]))
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(headers, rows))
	b.WriteByte('\n')

	rows = rows[:0]
	for u := range r.UBounds {
		row := []string{fmt.Sprintf("%.2f", r.UBounds[u])}
		for p := range r.Policies {
			v := r.MedianResetMS[p][u]
			if math.IsNaN(v) {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f", v))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(headers, rows))
	b.WriteByte('\n')

	var series []textplot.Series
	for p := range r.Policies {
		series = append(series, textplot.Series{Name: r.Policies[p], Ys: r.SchedFrac[p]})
	}
	b.WriteString(textplot.Lines("schedulable fraction vs. utilization", r.UBounds, series, 56, 12))
	return b.String()
}
