package experiments

import "testing"

// TestDeterministicRender: every randomized driver must produce
// byte-identical output for a fixed seed — the property EXPERIMENTS.md
// relies on when quoting outputs.
func TestDeterministicRender(t *testing.T) {
	runs := map[string]func() (string, error){
		"fig6": func() (string, error) {
			r, err := Fig6(Fig6Config{SetsPerPoint: 6, UBounds: []float64{0.5, 0.8}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig7": func() (string, error) {
			r, err := Fig7(Fig7Config{SetsPerPoint: 4, Grid: []float64{0.3, 0.8}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"ablation": func() (string, error) {
			r, err := Ablation(AblationConfig{SetsPerPoint: 6, UBounds: []float64{0.6}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	}
	for name, run := range runs {
		a, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: output differs between identical runs", name)
		}
		if a == "" {
			t.Errorf("%s: empty render", name)
		}
	}
}
