package experiments

import "testing"

// TestDeterministicRender: every randomized driver must produce
// byte-identical output for a fixed seed — the property EXPERIMENTS.md
// relies on when quoting outputs.
func TestDeterministicRender(t *testing.T) {
	runs := map[string]func() (string, error){
		"fig6": func() (string, error) {
			r, err := Fig6(Fig6Config{SetsPerPoint: 6, UBounds: []float64{0.5, 0.8}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig7": func() (string, error) {
			r, err := Fig7(Fig7Config{SetsPerPoint: 4, Grid: []float64{0.3, 0.8}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"ablation": func() (string, error) {
			r, err := Ablation(AblationConfig{SetsPerPoint: 6, UBounds: []float64{0.6}, Seed: 41})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	}
	for name, run := range runs {
		a, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: output differs between identical runs", name)
		}
		if a == "" {
			t.Errorf("%s: empty render", name)
		}
	}
}

// TestWorkerCountInvariance: every driver routed through the parallel
// sweep engine must render byte-identically at workers=1 and workers=4
// for the same seed — the engine's core guarantee (per-index random
// substreams, index-ordered reduction).
func TestWorkerCountInvariance(t *testing.T) {
	drivers := map[string]func(workers int) (string, error){
		"fig3": func(w int) (string, error) {
			r, err := Fig3(20, 10, w)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig4": func(w int) (string, error) {
			r, err := Fig4(7, 9, w)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig5": func(w int) (string, error) {
			r, err := Fig5(4, w)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig6": func(w int) (string, error) {
			r, err := Fig6(Fig6Config{SetsPerPoint: 6, UBounds: []float64{0.5, 0.8}, Seed: 41, Workers: w})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"fig7": func(w int) (string, error) {
			r, err := Fig7(Fig7Config{SetsPerPoint: 4, Grid: []float64{0.3, 0.8}, Seed: 41, Workers: w})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"ablation": func(w int) (string, error) {
			r, err := Ablation(AblationConfig{SetsPerPoint: 6, UBounds: []float64{0.6}, Seed: 41, Workers: w})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
		"service": func(w int) (string, error) {
			r, err := ServiceQuality(ServiceQualityConfig{Sets: 4, UBound: 0.55, Seed: 17, Workers: w})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		},
	}
	for name, run := range drivers {
		seq, err := run(1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		parl, err := run(4)
		if err != nil {
			t.Fatalf("%s workers=4: %v", name, err)
		}
		if seq != parl {
			t.Errorf("%s: workers=1 and workers=4 renders differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				name, seq, parl)
		}
		if seq == "" {
			t.Errorf("%s: empty render", name)
		}
	}
}
