package experiments

import (
	"fmt"
	"math"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/fms"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/textplot"
)

// Fig5Result reproduces Fig. 5, the flight-management-system study:
// (a) the exact minimum HI-mode speedup over the (x, y) trade-off grid
// (contours in the paper, a shaded heat map here), at γ = 2;
// (b) the exact service resetting time over the (s, γ) grid, in
// milliseconds, with minimal overrun preparation and y = 2 degradation.
type Fig5Result struct {
	// Panel (a).
	XGrid, YGrid []float64
	SMin         [][]float64 // [yIdx][xIdx]
	// Panel (b).
	SpeedGrid, GammaGrid []float64
	ResetMS              [][]float64 // [gammaIdx][speedIdx]; NaN = infinite
	// HeadlineRecoveryMS is the worst-case recovery (Δ_R) at s = 2 for
	// the FMS's own WCET uncertainty γ = 2 — the paper's "less than 3 s"
	// observation. (Larger γ values on the sweep grid recover slower;
	// that is what panel (b) shows.)
	HeadlineRecoveryMS float64
}

// Fig5 evaluates both panels on steps×steps grids. workers bounds the
// sweep parallelism (0 = all cores); the output is identical for every
// worker count.
func Fig5(steps, workers int) (Fig5Result, error) {
	if steps <= 1 {
		steps = 9
	}
	res := Fig5Result{}

	// Panel (a): s_min over x ∈ (0.2, 0.9), y ∈ [1.5, 4] at γ = 2.
	// (y = 1 is excluded: with undegraded LO tasks the carry-over ramps
	// pin s_min at the number of LO tasks regardless of x, which would
	// wash out the rest of the map — see fms.TestUndegradedSpeedup...)
	base, err := fms.Tasks(fms.DefaultGamma)
	if err != nil {
		return res, err
	}
	for i := 0; i < steps; i++ {
		res.XGrid = append(res.XGrid, 0.2+0.7*float64(i)/float64(steps-1))
		res.YGrid = append(res.YGrid, 1.5+2.5*float64(i)/float64(steps-1))
	}
	// One exact speedup analysis per (y, x) grid cell, fanned out one row
	// (fixed y) per work item: adjacent x cells share their decisive
	// witness Δ, so each cell warm-starts the next one's pruned walk
	// (core.Options.WarmWitness — results are bit-identical to cold
	// walks, so -workers invariance is preserved). The Scratch and the
	// witness both live inside the work item, never across items.
	smin, err := par.Map(len(res.YGrid), workers, func(yi int) ([]float64, error) {
		y := res.YGrid[yi]
		scratch := new(core.Scratch)
		var warm core.SpeedupResult
		row := make([]float64, len(res.XGrid))
		for xi, x := range res.XGrid {
			shaped, err := base.ShortenHIDeadlines(rat.FromFloat(x, 1<<16))
			if err != nil {
				return nil, err
			}
			shaped, err = shaped.DegradeLO(rat.FromFloat(y, 1<<16))
			if err != nil {
				return nil, err
			}
			sp, err := core.MinSpeedupOpts(shaped, core.Options{
				Scratch:     scratch,
				WarmWitness: warm.WitnessDelta,
			})
			if err != nil {
				return nil, err
			}
			warm = sp
			row[xi] = sp.Speedup.Float64()
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.SMin = smin

	// Panel (b): Δ_R over s ∈ [1.2, 3], γ ∈ [1, 5], with minimal x and
	// y = 2. One row of reset analyses per γ (the prepared set is shared
	// along the row).
	for i := 0; i < steps; i++ {
		res.SpeedGrid = append(res.SpeedGrid, 1.2+1.8*float64(i)/float64(steps-1))
		res.GammaGrid = append(res.GammaGrid, 1.0+4.0*float64(i)/float64(steps-1))
	}
	rows, err := par.Map(len(res.GammaGrid), workers, func(gi int) ([]float64, error) {
		row := make([]float64, len(res.SpeedGrid))
		scratch := new(core.Scratch)
		set, err := fms.Tasks(rat.FromFloat(res.GammaGrid[gi], 1<<16))
		if err != nil {
			return nil, err
		}
		set, err = set.DegradeLO(rat.Two)
		if err != nil {
			return nil, err
		}
		_, prepared, err := core.MinimalX(set)
		if err != nil {
			return nil, err
		}
		for si, s := range res.SpeedGrid {
			rr, err := core.ResetTimeOpts(prepared, rat.FromFloat(s, 1<<16), core.Options{Scratch: scratch})
			if err != nil {
				return nil, err
			}
			if rr.Reset.IsInf() {
				row[si] = math.NaN()
				continue
			}
			row[si] = rr.Reset.Float64() / fms.TicksPerMS
		}
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.ResetMS = rows

	// Headline: Δ_R at s = 2 for the FMS's own γ = 2.
	headSet, err := fms.Tasks(fms.DefaultGamma)
	if err != nil {
		return res, err
	}
	headSet, err = headSet.DegradeLO(rat.Two)
	if err != nil {
		return res, err
	}
	_, prepared, err := core.MinimalX(headSet)
	if err != nil {
		return res, err
	}
	rr, err := core.ResetTime(prepared, rat.Two)
	if err != nil {
		return res, err
	}
	if !rr.Reset.IsInf() {
		res.HeadlineRecoveryMS = rr.Reset.Float64() / fms.TicksPerMS
	}
	return res, nil
}

// Render emits both panels as contour-band maps (like the paper's
// contour plots) and the headline number.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString(textplot.Banded(
		"Fig. 5a — FMS minimum HI-mode speedup over (x, y), γ = 2",
		"x (overrun preparation)", "y (degradation)",
		r.XGrid, r.YGrid, r.SMin,
		[]float64{0.8, 1.0, 1.25, 1.5, 2.0}))
	b.WriteByte('\n')
	b.WriteString(textplot.Banded(
		"Fig. 5b — FMS service resetting time [ms] over (s, γ), minimal x, y = 2",
		"s (HI-mode speed)", "γ = C(HI)/C(LO)",
		r.SpeedGrid, r.GammaGrid, r.ResetMS,
		[]float64{250, 500, 1000, 2000, 4000}))
	fmt.Fprintf(&b, "\nheadline: worst-case recovery at s = 2, γ = 2: %.1f ms  [paper: < 3 s]\n",
		r.HeadlineRecoveryMS)
	return b.String()
}
