package experiments

import "testing"

// TestFig6PlanAblationIdentical pins the Fig6Config.NoPlan contract: the
// columnar demand plans are a pure evaluation strategy, so the ablation
// arm (NoPlan: true) must render byte-identically to the planned default
// for the same seed. A divergence here means the plan lowering changed a
// result, not just its cost.
func TestFig6PlanAblationIdentical(t *testing.T) {
	run := func(noPlan bool) string {
		r, err := Fig6(Fig6Config{
			SetsPerPoint: 6,
			UBounds:      []float64{0.5, 0.8},
			Seed:         41,
			NoPlan:       noPlan,
		})
		if err != nil {
			t.Fatalf("noPlan=%v: %v", noPlan, err)
		}
		return r.Render()
	}
	planned, scalar := run(false), run(true)
	if planned == "" {
		t.Fatal("empty render")
	}
	if planned != scalar {
		t.Errorf("fig6 renders diverge between planned and NoPlan runs:\n--- planned ---\n%s\n--- NoPlan ---\n%s",
			planned, scalar)
	}
}

// TestFig7PlanAblationIdentical is the Fig. 7 counterpart: the
// schedulability-region fractions must not move when the plans are
// disabled.
func TestFig7PlanAblationIdentical(t *testing.T) {
	run := func(noPlan bool) string {
		r, err := Fig7(Fig7Config{
			SetsPerPoint: 4,
			Grid:         []float64{0.3, 0.8},
			Seed:         41,
			NoPlan:       noPlan,
		})
		if err != nil {
			t.Fatalf("noPlan=%v: %v", noPlan, err)
		}
		return r.Render()
	}
	planned, scalar := run(false), run(true)
	if planned == "" {
		t.Fatal("empty render")
	}
	if planned != scalar {
		t.Errorf("fig7 renders diverge between planned and NoPlan runs:\n--- planned ---\n%s\n--- NoPlan ---\n%s",
			planned, scalar)
	}
}
