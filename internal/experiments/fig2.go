package experiments

import (
	"fmt"
	"strings"

	"mcspeedup/internal/dbf"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/task"
)

// Fig2Result reproduces Fig. 2, the paper's illustration of the
// worst-case arrived-demand geometry behind Lemma 3 / Theorem 4: the
// analysis interval [t̂, t̂+Δ] ends exactly at a job arrival (t_end = t_a^λ),
// and the carry-over job μ arrived D(LO) before a point from which its
// window w'(τ, Δ) = (Δ mod T(HI)) − (T(HI) − D(LO)) measures the demand
// it can still impose. Unlike the other figures this one carries no data;
// the driver renders the annotated timeline for a concrete task and
// checks the window identity on it.
type Fig2Result struct {
	Task    task.Task
	Delta   task.Time
	W       task.Time // w'(τ, Δ) per eq. (9)
	Diagram string
}

// Fig2 renders the worst-case scenario for τ₁ of the running example at
// an interval length one full period plus a partial window.
func Fig2() Fig2Result {
	tk := examplesets.TableI()[0] // τ1: T = 10, D(LO) = 6
	period := tk.Period[task.HI]
	dLO := tk.Deadline[task.LO]
	delta := period + dLO + 2 // lands inside the carry window: w′ = 4

	w := delta%period - (period - dLO)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — worst-case arrived-demand geometry (τ₁: T(HI)=%d, D(LO)=%d, Δ=%d)\n\n",
		period, dLO, delta)
	b.WriteString("              t̂ (switch)                                t̂+Δ = t_a^λ\n")
	b.WriteString("              │◄──────────────── Δ ────────────────────►│\n")
	b.WriteString("  ────┬───────┼──────────────┬─────────────┬────────────┼────────▶ time\n")
	b.WriteString("     t_a^μ    │          μ's deadline    arrival      arrival λ\n")
	b.WriteString("      │◄─D(LO)─►│ carry-over │◄───────── T(HI) ─────────►│\n")
	fmt.Fprintf(&b, "\n  window w'(τ, Δ) = (Δ mod T(HI)) − (T(HI) − D(LO)) = (%d mod %d) − (%d − %d) = %d\n",
		delta, period, period, dLO, w)
	b.WriteString("  Lemma 3: sliding the interval so it ends at λ's arrival never decreases\n")
	b.WriteString("  the arrived demand, so eq. (10) counts ⌊Δ/T⌋+1 full jobs plus the\n")
	b.WriteString("  carry-over term r(τ, Δ, w′).\n")

	return Fig2Result{Task: tk, Delta: delta, W: w, Diagram: b.String()}
}

// Render emits the diagram and cross-checks the window against the dbf
// package's ADB decomposition.
func (r Fig2Result) Render() string {
	adb := dbf.ADB(&r.Task, r.Delta)
	full := int64(r.Delta/r.Task.Period[task.HI]) + 1
	return fmt.Sprintf("%s\n  check: ADB_HI(τ, %d) = %d = r(w′=%d) + %d·C(HI)\n",
		r.Diagram, r.Delta, adb, r.W, full)
}
