package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAblationShapesHold(t *testing.T) {
	r, err := Ablation(AblationConfig{
		SetsPerPoint: 20,
		UBounds:      []float64{0.5, 0.8},
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 4 {
		t.Fatalf("policies: %v", r.Policies)
	}
	idx := map[string]int{}
	for i, p := range r.Policies {
		idx[p] = i
	}
	term := r.SchedFrac[idx["terminate"]]
	deg := r.SchedFrac[idx["degrade(y=2)"]]
	speedOnly := r.SchedFrac[idx["speedup"]]
	combined := r.SchedFrac[idx["speedup+degrade"]]

	for u := range r.UBounds {
		// The combined policy dominates degradation-only (same service
		// model, more speed).
		if combined[u]+1e-9 < deg[u] {
			t.Errorf("U=%v: combined %.2f below degrade %.2f", r.UBounds[u], combined[u], deg[u])
		}
		// Termination at nominal speed dominates pure degradation at
		// nominal speed (strictly less HI-mode demand).
		if term[u]+1e-9 < deg[u] {
			t.Errorf("U=%v: terminate %.2f below degrade %.2f", r.UBounds[u], term[u], deg[u])
		}
		// Speedup-only suffers from undegraded LO carry-over ramps
		// (s_min ≈ #LO tasks), so it should trail the combined policy.
		if speedOnly[u] > combined[u]+1e-9 {
			t.Errorf("U=%v: speedup-only %.2f above combined %.2f", r.UBounds[u], speedOnly[u], combined[u])
		}
		// All fractions are valid probabilities.
		for p := range r.Policies {
			f := r.SchedFrac[p][u]
			if f < 0 || f > 1 {
				t.Fatalf("fraction %v out of range", f)
			}
			if m := r.MedianResetMS[p][u]; !math.IsNaN(m) && m < 0 {
				t.Fatalf("negative median reset %v", m)
			}
		}
	}

	out := r.Render()
	for _, want := range []string{"Policy ablation", "terminate", "speedup+degrade", "U_bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTerminate.String() != "terminate" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy.String broken")
	}
}
