package experiments

import (
	"fmt"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/edfvd"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// Fig7Config scales the schedulability-region study of Fig. 7. The paper
// generates over 10000 task sets over the (U_HI, U_LO) grid with γ = 10,
// terminates LO tasks in HI mode, and accepts a set as schedulable under
// temporary speedup when it is schedulable at s = 2 with a resetting time
// of at most 5 s.
type Fig7Config struct {
	SetsPerPoint int
	// Grid holds the axis values used for both U_HI and U_LO.
	Grid []float64
	Seed int64
	// Speed is the temporary speedup factor (paper: 2).
	Speed rat.Rat
	// ResetLimit is the maximum allowed resetting time in ticks
	// (paper: 5 s = 50000 ticks).
	ResetLimit task.Time
	// NoPlan disables the compiled columnar demand plans — the ablation
	// arm for the plan-vs-scalar cost comparison. Output is identical
	// either way.
	NoPlan bool `json:"noPlan,omitempty"`
	// Workers bounds the sweep parallelism (0 = all cores). Output is
	// identical for every worker count.
	Workers int `json:"-"`
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.SetsPerPoint <= 0 {
		c.SetsPerPoint = 20
	}
	if len(c.Grid) == 0 {
		for u := 0.1; u < 0.96; u += 0.1 {
			c.Grid = append(c.Grid, u)
		}
	}
	if c.Seed == 0 {
		c.Seed = 2015
	}
	if c.Speed.Sign() <= 0 {
		c.Speed = rat.Two
	}
	if c.ResetLimit <= 0 {
		c.ResetLimit = 5000 * gen.TicksPerMS
	}
	return c
}

// Fig7Result reproduces Fig. 7: the fraction of schedulable task sets
// over the (U_HI, U_LO) grid, under temporary speedup versus without it,
// plus the EDF-VD utilization test as a classical reference.
type Fig7Result struct {
	Config Fig7Config
	Grid   []float64
	// Fractions indexed [uLoIdx][uHiIdx].
	WithSpeedup [][]float64
	NoSpeedup   [][]float64
	EDFVD       [][]float64
	// GenFailures counts grid cells × draws where the generator could
	// not hit the utilization targets.
	GenFailures int
}

// fig7DrawResult classifies one generated task set of one grid cell.
type fig7DrawResult struct {
	genFail                bool
	okVD, okPlain, okSpeed bool
}

// Fig7 runs the study: per grid cell, SetsPerPoint random sets with
// γ = 10 and terminated LO tasks; a set counts as schedulable under
// speedup when some x yields LO-mode feasibility, the exact HI-mode test
// passes at Config.Speed, and Δ_R(Speed) ≤ ResetLimit. Draws run in
// parallel (Config.Workers) with one random substream per
// (cell, draw index); the reduction is index-ordered, so the result is
// identical for every worker count.
func Fig7(cfg Fig7Config) (Fig7Result, error) {
	cfg = cfg.withDefaults()
	res := Fig7Result{Config: cfg, Grid: cfg.Grid}

	params := gen.Defaults()
	params.GammaMin, params.GammaMax = 10, 10

	limit := rat.FromInt64(int64(cfg.ResetLimit))
	cells := len(cfg.Grid) * len(cfg.Grid)

	// One work item per grid cell: the cell's draws run sequentially so
	// each exact speedup walk can warm-start the next with its witness Δ
	// and share one walker arena (same-cell sets target the same
	// utilizations and tend to share their decisive interval). Witness
	// and Scratch never cross work items, and random substreams are still
	// per (cell, draw), so the output stays identical for every worker
	// count — warm-started walks return bit-identical results
	// (core.Options.WarmWitness).
	analyzeCell := func(cell int) ([]fig7DrawResult, error) {
		li, hi := cell/len(cfg.Grid), cell%len(cfg.Grid)
		uLO, uHI := cfg.Grid[li], cfg.Grid[hi]
		scratch := new(core.Scratch)
		var warm core.SpeedupResult
		outs := make([]fig7DrawResult, cfg.SetsPerPoint)
		for n := range outs {
			rnd := gen.SubRand(cfg.Seed, cell, n)
			out := &outs[n]
			base, ok := params.SetWithTargets(rnd, uHI, uLO, 0.025)
			if !ok {
				out.genFail = true
				continue
			}
			if vd, err := edfvd.Analyze(base); err == nil && vd.Schedulable {
				out.okVD = true
			}
			terminated := base.TerminateLO()
			_, prepared, err := core.MinimalX(terminated)
			if err != nil {
				continue // not even LO-mode feasible
			}
			sp, err := core.MinSpeedupOpts(prepared, core.Options{
				Scratch:     scratch,
				WarmWitness: warm.WitnessDelta,
				NoPlan:      cfg.NoPlan,
			})
			if err != nil {
				return nil, err
			}
			warm = sp
			if sp.Speedup.Cmp(rat.One) <= 0 {
				out.okPlain = true
				out.okSpeed = true // speedup subsumes the no-speedup case
				continue
			}
			if sp.Speedup.Cmp(cfg.Speed) > 0 {
				continue
			}
			rr, err := core.ResetTimeOpts(prepared, cfg.Speed, core.Options{Scratch: scratch, NoPlan: cfg.NoPlan})
			if err != nil {
				return nil, err
			}
			if !rr.Reset.IsInf() && rr.Reset.Cmp(limit) <= 0 {
				out.okSpeed = true
			}
		}
		return outs, nil
	}

	cellDraws, err := par.Map(cells, cfg.Workers, analyzeCell)
	if err != nil {
		return res, err
	}

	res.WithSpeedup = make([][]float64, len(cfg.Grid))
	res.NoSpeedup = make([][]float64, len(cfg.Grid))
	res.EDFVD = make([][]float64, len(cfg.Grid))
	for li := range cfg.Grid {
		res.WithSpeedup[li] = make([]float64, len(cfg.Grid))
		res.NoSpeedup[li] = make([]float64, len(cfg.Grid))
		res.EDFVD[li] = make([]float64, len(cfg.Grid))
		for hi := range cfg.Grid {
			cell := li*len(cfg.Grid) + hi
			var okSpeed, okPlain, okVD, total int
			for n := 0; n < cfg.SetsPerPoint; n++ {
				d := cellDraws[cell][n]
				if d.genFail {
					res.GenFailures++
					continue
				}
				total++
				if d.okVD {
					okVD++
				}
				if d.okPlain {
					okPlain++
				}
				if d.okSpeed {
					okSpeed++
				}
			}
			if total == 0 {
				total = 1
			}
			res.WithSpeedup[li][hi] = float64(okSpeed) / float64(total)
			res.NoSpeedup[li][hi] = float64(okPlain) / float64(total)
			res.EDFVD[li][hi] = float64(okVD) / float64(total)
		}
	}
	return res, nil
}

// Render emits the three region maps.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString(textplot.Heatmap(
		fmt.Sprintf("Fig. 7 — schedulable fraction with temporary speedup (s = %v, Δ_R ≤ %d ms)",
			r.Config.Speed, r.Config.ResetLimit/gen.TicksPerMS),
		"U_HI", "U_LO", r.Grid, r.Grid, r.WithSpeedup))
	b.WriteByte('\n')
	b.WriteString(textplot.Heatmap(
		"Fig. 7 (baseline) — schedulable fraction without speedup (s = 1)",
		"U_HI", "U_LO", r.Grid, r.Grid, r.NoSpeedup))
	b.WriteByte('\n')
	b.WriteString(textplot.Heatmap(
		"Fig. 7 (reference) — EDF-VD utilization-test acceptance",
		"U_HI", "U_LO", r.Grid, r.Grid, r.EDFVD))
	if r.GenFailures > 0 {
		fmt.Fprintf(&b, "\n(%d generator draws missed their utilization targets)\n", r.GenFailures)
	}
	return b.String()
}
