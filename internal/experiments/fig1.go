package experiments

import (
	"fmt"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/dbf"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// Fig1Result reproduces Fig. 1: the summed HI-mode demand bound function
// of the Table-I set against the minimum supply line s_min·Δ, for (a) the
// undegraded and (b) the degraded variant.
type Fig1Result struct {
	Horizon task.Time
	Xs      []float64
	// DemandA/SupplyA: no service degradation; DemandB/SupplyB: with
	// degradation (D₂(HI)=15, T₂(HI)=20).
	DemandA, SupplyA []float64
	DemandB, SupplyB []float64
	SMinA, SMinB     rat.Rat
}

// Fig1 samples both demand curves over [0, horizon].
func Fig1(horizon task.Time) (Fig1Result, error) {
	if horizon <= 0 {
		horizon = 30
	}
	res := Fig1Result{Horizon: horizon}

	variants := []task.Set{examplesets.TableI(), examplesets.TableIDegraded()}
	smins := make([]rat.Rat, 2)
	for i, s := range variants {
		sp, err := core.MinSpeedup(s)
		if err != nil {
			return res, err
		}
		smins[i] = sp.Speedup
	}
	res.SMinA, res.SMinB = smins[0], smins[1]

	for d := task.Time(0); d <= horizon; d++ {
		x := float64(d)
		res.Xs = append(res.Xs, x)
		res.DemandA = append(res.DemandA, float64(dbf.SetHIMode(variants[0], d)))
		res.SupplyA = append(res.SupplyA, res.SMinA.Float64()*x)
		res.DemandB = append(res.DemandB, float64(dbf.SetHIMode(variants[1], d)))
		res.SupplyB = append(res.SupplyB, res.SMinB.Float64()*x)
	}
	return res, nil
}

// Render emits both panels as line charts.
func (r Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString(textplot.Lines(
		fmt.Sprintf("Fig. 1a — HI-mode demand vs. minimum supply (no degradation, s_min = %v)", r.SMinA),
		r.Xs,
		[]textplot.Series{
			{Name: "Σ DBF_HI(Δ)", Ys: r.DemandA},
			{Name: "s_min·Δ", Ys: r.SupplyA},
		}, 64, 16))
	b.WriteByte('\n')
	b.WriteString(textplot.Lines(
		fmt.Sprintf("Fig. 1b — HI-mode demand vs. minimum supply (degraded, s_min = %v)", r.SMinB),
		r.Xs,
		[]textplot.Series{
			{Name: "Σ DBF_HI(Δ)", Ys: r.DemandB},
			{Name: "s_min·Δ", Ys: r.SupplyB},
		}, 64, 16))
	return b.String()
}
