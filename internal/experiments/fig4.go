package experiments

import (
	"fmt"
	"math"
	"strings"

	"mcspeedup/internal/core"
	"mcspeedup/internal/par"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/task"
	"mcspeedup/internal/textplot"
)

// Fig4Result reproduces Fig. 4, the closed-form trade-offs of Section V
// on an implicit-deadline version of the running example:
// (a) the Lemma-6 speedup bound as a function of the overrun-preparation
// factor x, one series per degradation factor y;
// (b) the Lemma-7 resetting-time bound as a function of the HI-mode
// speed s, one series per (artificially scaled) s_min.
type Fig4Result struct {
	// Panel (a).
	XValues []float64
	YLabels []string
	SBound  [][]float64 // [yIdx][xIdx]
	// Panel (b).
	Speeds      []float64
	SMinLabels  []string
	ResetBounds [][]float64 // [sminIdx][speedIdx]; NaN where infinite
}

// fig4Base is the implicit-deadline variant of the running example used
// for the Section-V special case.
func fig4Base() task.Set {
	return task.Set{
		task.NewImplicitHI("t1", 40, 8, 16), // U(LO)=0.2, U(HI)=0.4
		task.NewImplicitLO("t2", 40, 8),     // U=0.2
	}
}

// Fig4 evaluates the closed forms over the trade-off grids. workers
// bounds the sweep parallelism (0 = all cores); the output is identical
// for every worker count.
func Fig4(xSteps, speedSteps, workers int) (Fig4Result, error) {
	if xSteps <= 1 {
		xSteps = 13
	}
	if speedSteps <= 1 {
		speedSteps = 25
	}
	res := Fig4Result{}
	base := fig4Base()
	ys := []rat.Rat{rat.One, rat.New(3, 2), rat.Two, rat.FromInt64(3)}
	for _, y := range ys {
		res.YLabels = append(res.YLabels, "y="+y.String())
	}
	res.SBound = make([][]float64, len(ys))

	// Panel (a): one closed-form column per x sweep point.
	type xColumn struct {
		x      float64
		bounds []float64
	}
	columns, err := par.Map(xSteps, workers, func(i int) (xColumn, error) {
		// x sweeps (0.1, 0.9).
		col := xColumn{x: 0.1 + 0.8*float64(i)/float64(xSteps-1)}
		xr := rat.FromFloat(col.x, 1<<16)
		for _, y := range ys {
			shaped, err := base.ShortenHIDeadlines(xr)
			if err != nil {
				return col, err
			}
			shaped, err = shaped.DegradeLO(y)
			if err != nil {
				return col, err
			}
			bound := core.ClosedFormSpeedup(shaped)
			v := math.NaN()
			if !bound.IsInf() {
				v = bound.Float64()
			}
			col.bounds = append(col.bounds, v)
		}
		return col, nil
	})
	if err != nil {
		return res, err
	}
	for _, col := range columns {
		res.XValues = append(res.XValues, col.x)
		for yi := range ys {
			res.SBound[yi] = append(res.SBound[yi], col.bounds[yi])
		}
	}

	// Panel (b): Lemma 7 with s_min artificially scaled, as the paper's
	// Example 4 does to emulate different HI-mode loads.
	shaped, err := base.ShortenHIDeadlines(rat.New(1, 2))
	if err != nil {
		return res, err
	}
	shaped, err = shaped.DegradeLO(rat.Two)
	if err != nil {
		return res, err
	}
	sminBase := core.ClosedFormSpeedup(shaped)
	totalC := rat.FromInt64(int64(shaped.TotalCHI()))
	scales := []rat.Rat{rat.One, rat.New(5, 4), rat.New(3, 2)}
	res.ResetBounds = make([][]float64, len(scales))
	for si, sc := range scales {
		res.SMinLabels = append(res.SMinLabels,
			fmt.Sprintf("s_min=%.2f", sminBase.Mul(sc).Float64()))
		_ = si
	}
	for i := 0; i < speedSteps; i++ {
		s := 1.0 + 2.5*float64(i)/float64(speedSteps-1)
		res.Speeds = append(res.Speeds, s)
		speed := rat.FromFloat(s, 1<<16)
		for si, sc := range scales {
			smin := sminBase.Mul(sc)
			v := math.NaN()
			if speed.Cmp(smin) > 0 {
				v = totalC.Div(speed.Sub(smin)).Float64()
			}
			res.ResetBounds[si] = append(res.ResetBounds[si], v)
		}
	}
	return res, nil
}

// Render emits both panels.
func (r Fig4Result) Render() string {
	var b strings.Builder
	var sA []textplot.Series
	for i, lbl := range r.YLabels {
		sA = append(sA, textplot.Series{Name: lbl, Ys: r.SBound[i]})
	}
	b.WriteString(textplot.Lines(
		"Fig. 4a — Lemma-6 speedup bound vs. overrun preparation x (per degradation y)",
		r.XValues, sA, 64, 16))
	b.WriteByte('\n')
	var sB []textplot.Series
	for i, lbl := range r.SMinLabels {
		sB = append(sB, textplot.Series{Name: lbl, Ys: r.ResetBounds[i]})
	}
	b.WriteString(textplot.Lines(
		"Fig. 4b — Lemma-7 resetting-time bound vs. HI-mode speed s (per s_min)",
		r.Speeds, sB, 64, 16))
	return b.String()
}
