package gen

import (
	"math"
	"testing"
)

// TestZipfCorpusGoldenDraws pins the first draws of a Substream-seeded
// corpus. mcs-load arrival schedules are replayable by (seed, n, s)
// alone; these values may only change with a deliberate decision to
// break replay compatibility.
func TestZipfCorpusGoldenDraws(t *testing.T) {
	c := ZipfCorpus(Substream(1, 0, 0), 16, 1.1)
	want := []int{0, 0, 0, 0, 7, 5, 3, 1, 0, 2, 15, 1}
	for i, w := range want {
		if got := c.Next(); got != w {
			t.Errorf("draw %d = %d, want %d (golden draw sequence changed!)", i, got, w)
		}
	}
}

// TestZipfCorpusDeterministic: same (seed, n, s) → same sequence; a
// different seed diverges.
func TestZipfCorpusDeterministic(t *testing.T) {
	a := ZipfCorpus(7, 64, 1.0)
	b := ZipfCorpus(7, 64, 1.0)
	diverged := false
	other := ZipfCorpus(8, 64, 1.0)
	for i := 0; i < 256; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d differs between identically seeded corpora: %d vs %d", i, da, db)
		}
		if da != other.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical draw sequences")
	}
}

// TestZipfCorpusDistribution: empirical frequencies track the Zipf
// probabilities — rank popularity is monotone decreasing and the hot
// rank's share matches Prob(0) within sampling noise.
func TestZipfCorpusDistribution(t *testing.T) {
	const n, draws = 16, 100000
	c := ZipfCorpus(42, n, 1.1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[c.Next()]++
	}
	for k := 1; k < n; k++ {
		// Allow 10% slack for sampling noise on adjacent ranks.
		if float64(counts[k]) > 1.1*float64(counts[k-1]) {
			t.Errorf("rank %d drawn more often than rank %d (%d vs %d)", k, k-1, counts[k], counts[k-1])
		}
	}
	hot := float64(counts[0]) / draws
	if want := c.Prob(0); math.Abs(hot-want) > 0.01 {
		t.Errorf("rank-0 share %.4f, want %.4f ± 0.01", hot, want)
	}
	var total float64
	for k := 0; k < n; k++ {
		total += c.Prob(k)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %g, want 1", total)
	}
}

func TestZipfCorpusPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"n=0", func() { ZipfCorpus(1, 0, 1.1) }},
		{"s=0", func() { ZipfCorpus(1, 4, 0) }},
		{"s=NaN", func() { ZipfCorpus(1, 4, math.NaN()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.fn()
		})
	}
}
