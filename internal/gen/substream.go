package gen

import "math/rand"

// The experiment sweeps are parallelized per task-set index (package
// par), so every index needs a random stream that is (a) independent of
// every other index and (b) a pure function of the experiment seed and
// the index — never of execution order. Substream derives such a stream
// seed from (seed, point, index) with SplitMix64 finalizer mixing, the
// standard splittable-seed construction: each coordinate passes through
// a full 64-bit avalanche, so adjacent seeds, points, and indices land
// in unrelated states.

// mix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), a bijective 64-bit avalanche.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream derives the stream seed for coordinate (point, index) of a
// sweep keyed by seed. point typically identifies the data point (a
// utilization value, a grid cell) and index the task-set draw within it.
// Each coordinate is folded into an already-avalanched state and mixed
// again, so the combination is not commutative — (seed, point, index)
// permutations land on unrelated streams.
func Substream(seed int64, point, index int) int64 {
	const phi = 0x9e3779b97f4a7c15 // SplitMix64 state increment
	z := mix64(uint64(seed))
	z = mix64(z + phi*(uint64(point)+1))
	z = mix64(z + phi*(uint64(index)+1))
	return int64(z)
}

// SubRand returns an independent *rand.Rand for coordinate
// (point, index) of the sweep keyed by seed.
func SubRand(seed int64, point, index int) *rand.Rand {
	return rand.New(rand.NewSource(Substream(seed, point, index)))
}
