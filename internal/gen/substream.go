package gen

import "math/rand"

// The experiment sweeps are parallelized per task-set index (package
// par), so every index needs a random stream that is (a) independent of
// every other index and (b) a pure function of the experiment seed and
// the index — never of execution order. Substream derives such a stream
// seed from (seed, point, index) with SplitMix64 finalizer mixing, the
// standard splittable-seed construction: each coordinate passes through
// a full 64-bit avalanche, so adjacent seeds, points, and indices land
// in unrelated states.

// mix64 is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"), a bijective 64-bit avalanche.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream derives the stream seed for coordinate (point, index) of a
// sweep keyed by seed. point typically identifies the data point (a
// utilization value, a grid cell) and index the task-set draw within it.
// Each coordinate is folded into an already-avalanched state and mixed
// again, so the combination is not commutative — (seed, point, index)
// permutations land on unrelated streams.
func Substream(seed int64, point, index int) int64 {
	const phi = 0x9e3779b97f4a7c15 // SplitMix64 state increment
	z := mix64(uint64(seed))
	z = mix64(z + phi*(uint64(point)+1))
	z = mix64(z + phi*(uint64(index)+1))
	return int64(z)
}

// SubRand returns an independent *rand.Rand for coordinate
// (point, index) of the sweep keyed by seed.
func SubRand(seed int64, point, index int) *rand.Rand {
	return rand.New(rand.NewSource(Substream(seed, point, index)))
}

// Stream is a SplitMix64 sequence generator over a Substream coordinate:
// the same splittable keying as SubRand without rand.NewSource's
// expensive Lagged-Fibonacci warm-up, so hot loops (the fleet engine
// seeds one stream per (replicate, task) — millions per fleet) can
// reseed in a few instructions. The zero value is the (0,0,0) stream;
// Reseed repositions it. Stream satisfies the Rand interface ACET
// sampling consumes.
type Stream struct {
	state uint64
}

// NewStream returns the stream for coordinate (point, index) of the
// sweep keyed by seed.
func NewStream(seed int64, point, index int) Stream {
	var s Stream
	s.Reseed(seed, point, index)
	return s
}

// Reseed repositions the stream to coordinate (point, index) of seed.
func (s *Stream) Reseed(seed int64, point, index int) {
	s.state = uint64(Substream(seed, point, index))
}

// Uint64 returns the next value of the SplitMix64 sequence.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0,
// matching math/rand, and rejects the biased tail exactly as
// math/rand.Int63n does.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("gen: Stream.Int63n with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return int64(s.Uint64()>>1) & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := int64(s.Uint64() >> 1)
	for v > max {
		v = int64(s.Uint64() >> 1)
	}
	return v % n
}

// Rand is the sampling interface ACET draws through: both *rand.Rand
// and *Stream satisfy it.
type Rand interface {
	Float64() float64
	Int63n(n int64) int64
}
