package gen

import (
	"fmt"

	"mcspeedup/internal/task"
)

// ACET is a per-job actual-execution-time model, in the style of the
// eeft_sched exemplar: each job draws its ACET by criticality band as a
// fraction of the task's C(LO) budget, and HI-criticality jobs overrun
// into (C(LO), C(HI)] with a configured probability. The fleet engine
// samples one ACET per released job, so mode switches, episode lengths,
// and budget trips become empirical distributions instead of the single
// deterministic trace internal/sim's canned workloads produce.
type ACET struct {
	// LOFloor/LOCeil bound a LO-criticality job's ACET as a fraction of
	// its task's C(LO): the draw is uniform in [LOFloor, LOCeil]·C(LO),
	// clamped to [1, C(LO)].
	LOFloor, LOCeil float64
	// HIFloor/HICeil bound a non-overrunning HI-criticality job's ACET
	// the same way.
	HIFloor, HICeil float64
	// OverrunProb is the per-job probability that a HI-criticality job
	// exceeds C(LO); its demand is then uniform over the integers in
	// (C(LO), C(HI)]. Tasks with C(HI) = C(LO) cannot overrun and fall
	// back to the non-overrun band.
	OverrunProb float64
}

// DefaultACET is the model the fleet experiments use: LO jobs run
// 20–100 % of C(LO), HI jobs 30–100 %, and one HI job in a thousand
// overruns — rare enough that mode switches are episodic, frequent
// enough that a 100k-run fleet observes thousands of them.
func DefaultACET() ACET {
	return ACET{LOFloor: 0.2, LOCeil: 1, HIFloor: 0.3, HICeil: 1, OverrunProb: 0.001}
}

// IsZero reports whether a is the zero value (callers substitute
// DefaultACET).
func (a ACET) IsZero() bool { return a == ACET{} }

// Validate checks the band bounds.
func (a ACET) Validate() error {
	check := func(name string, floor, ceil float64) error {
		if !(floor >= 0 && ceil >= floor && ceil <= 1) {
			return fmt.Errorf("gen: ACET %s band [%g, %g] outside 0 <= floor <= ceil <= 1", name, floor, ceil)
		}
		return nil
	}
	if err := check("LO", a.LOFloor, a.LOCeil); err != nil {
		return err
	}
	if err := check("HI", a.HIFloor, a.HICeil); err != nil {
		return err
	}
	if a.OverrunProb < 0 || a.OverrunProb > 1 {
		return fmt.Errorf("gen: ACET overrun probability %g outside [0, 1]", a.OverrunProb)
	}
	return nil
}

// Sample draws one job's ACET from the band for crit, given the task's
// per-mode WCETs, consuming the Rand stream (a *rand.Rand or a Stream).
// The result is always a valid sim demand: at least 1, at most C(LO)
// for non-overruns and at most C(HI) for overruns.
func (a ACET) Sample(rnd Rand, crit task.Crit, cLO, cHI task.Time) task.Time {
	floor, ceil := a.LOFloor, a.LOCeil
	if crit == task.HI {
		if cHI > cLO && rnd.Float64() < a.OverrunProb {
			// Overrun: uniform over the integers in (C(LO), C(HI)].
			return cLO + 1 + task.Time(rnd.Int63n(int64(cHI-cLO)))
		}
		floor, ceil = a.HIFloor, a.HICeil
	}
	f := floor + (ceil-floor)*rnd.Float64()
	d := task.Time(f * float64(cLO))
	if d < 1 {
		d = 1
	}
	if d > cLO {
		d = cLO
	}
	return d
}
