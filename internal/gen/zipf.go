package gen

import (
	"math"
	"math/rand"
)

// Corpus is a deterministic Zipf-popularity sampler over n ranks: rank 0
// is the hottest item, rank n-1 the coldest, and rank k is drawn with
// probability proportional to 1/(k+1)^s. The load harness (cmd/mcs-load)
// uses it to skew traffic over a fixed set of task sets the way a real
// analysis service sees a few hot sets and a long tail; future fleet
// simulations share it.
//
// Sampling is inverse-CDF over a precomputed table, driven by a private
// *rand.Rand — never the global math/rand source, so a Corpus is a pure
// function of (seed, n, s) and replays identically (determcheck-clean).
// A Corpus is not safe for concurrent use.
type Corpus struct {
	cdf []float64 // cdf[k] = P(rank <= k); cdf[n-1] == 1
	rng *rand.Rand
}

// ZipfCorpus builds a sampler over n ranks with Zipf exponent s > 0,
// seeded by seed (typically a Substream derivation, so parallel harness
// workers get independent but reproducible streams). It panics on
// n <= 0 or a non-positive/NaN s.
func ZipfCorpus(seed int64, n int, s float64) *Corpus {
	if n <= 0 {
		panic("gen: ZipfCorpus needs n > 0")
	}
	if !(s > 0) { // also catches NaN
		panic("gen: ZipfCorpus needs a positive Zipf exponent")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &Corpus{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of ranks.
func (c *Corpus) Len() int { return len(c.cdf) }

// Next draws the next rank in [0, Len()).
func (c *Corpus) Next() int {
	u := c.rng.Float64()
	// Binary search for the first rank whose CDF reaches u.
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the sampling probability of rank k.
func (c *Corpus) Prob(k int) float64 {
	if k == 0 {
		return c.cdf[0]
	}
	return c.cdf[k] - c.cdf[k-1]
}
