// Package gen synthesizes random dual-criticality task sets following the
// generation protocol of Baruah et al. (reference [4] of the paper), with
// the parameter ranges the paper states in its Fig. 6 and Fig. 7 captions:
// minimum inter-arrival times drawn from [2 ms, 2 s], per-task
// LO-criticality utilizations from [0.01, 0.2], and WCET uncertainty
// factors γ = C(HI)/C(LO) from a configurable range ([1, 3] for Fig. 6,
// 10 for Fig. 7). Tasks have implicit deadlines (Section V); the paper's
// experiments then apply the x (overrun preparation) and y (service
// degradation) transforms from eqs. (13)–(14).
//
// The generator "starts with an empty task set and continuously adds new
// random tasks to this set until certain system utilization U_bound is
// met" [4]: the growth target is [4]'s average system utilization
// U_avg = (U_LO(LO) + U_HI(HI))/2; a candidate task that would overshoot
// U_bound is re-drawn, and generation succeeds when U_avg lands in
// [U_bound − tol, U_bound].
//
// Times are integer ticks with 1 tick = 100 µs, so [2 ms, 2 s] spans
// [20, 20000] ticks and rounding error in C = U·T is at most 0.5 %.
package gen

import (
	"math"
	"math/rand"
	"strconv"

	"mcspeedup/internal/task"
)

// TicksPerMS is the number of ticks per millisecond (1 tick = 100 µs).
const TicksPerMS = 10

// Params configures the random task generator.
type Params struct {
	// PeriodMin and PeriodMax bound the minimum inter-arrival times
	// (ticks). Periods are drawn log-uniformly so each decade is equally
	// represented, as is customary for [4]-style generators.
	PeriodMin, PeriodMax task.Time
	// UtilMin and UtilMax bound the per-task LO-criticality utilization.
	UtilMin, UtilMax float64
	// GammaMin and GammaMax bound the per-HI-task WCET uncertainty
	// factor γ = C(HI)/C(LO).
	GammaMin, GammaMax float64
	// ProbHI is the probability that a generated task is HI-criticality.
	ProbHI float64
	// Tol is the acceptance half-window under U_bound (default 0.02).
	Tol float64
	// MaxAttempts bounds redraws per added task (default 64).
	MaxAttempts int
}

// Defaults returns the Fig. 6 caption parameters: periods 2 ms–2 s,
// U(LO) ∈ [0.01, 0.2], γ ∈ [1, 3], an even HI/LO split.
func Defaults() Params {
	return Params{
		PeriodMin: 2 * TicksPerMS,
		PeriodMax: 2000 * TicksPerMS,
		UtilMin:   0.01,
		UtilMax:   0.2,
		GammaMin:  1,
		GammaMax:  3,
		ProbHI:    0.5,
	}
}

func (p Params) tol() float64 {
	if p.Tol <= 0 {
		return 0.02
	}
	return p.Tol
}

func (p Params) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 256
	}
	return p.MaxAttempts
}

// drawTask synthesizes one random task (without a name).
func (p Params) drawTask(rnd *rand.Rand, crit task.Crit) task.Task {
	logMin, logMax := math.Log(float64(p.PeriodMin)), math.Log(float64(p.PeriodMax))
	period := task.Time(math.Round(math.Exp(logMin + rnd.Float64()*(logMax-logMin))))
	if period < p.PeriodMin {
		period = p.PeriodMin
	}
	if period > p.PeriodMax {
		period = p.PeriodMax
	}
	u := p.UtilMin + rnd.Float64()*(p.UtilMax-p.UtilMin)
	cLO := task.Time(math.Round(u * float64(period)))
	if cLO < 1 {
		cLO = 1
	}
	if crit == task.LO {
		return task.NewImplicitLO("", period, cLO)
	}
	gamma := p.GammaMin + rnd.Float64()*(p.GammaMax-p.GammaMin)
	cHI := task.Time(math.Round(gamma * float64(cLO)))
	if cHI < cLO {
		cHI = cLO
	}
	if cHI > period {
		cHI = period // implicit deadline caps C(HI)
	}
	return task.NewImplicitHI("", period, cLO, cHI)
}

// uAvg is the growth metric of [4]'s experiments: the average system
// utilization (U_LO(LO) + U_HI(HI))/2 — LO tasks at their LO-criticality
// WCETs, HI tasks at their HI-criticality WCETs.
func uAvg(s task.Set) float64 {
	return (s.UtilCrit(task.LO, task.LO).Float64() +
		s.UtilCrit(task.HI, task.HI).Float64()) / 2
}

// Set grows a random task set until its average utilization reaches
// uBound (within tolerance). ok is false when the target could not be hit
// within the redraw budget — callers should redraw with fresh randomness.
// The result always contains at least one HI and one LO task so the
// mixed-criticality transforms are meaningful.
func (p Params) Set(rnd *rand.Rand, uBound float64) (task.Set, bool) {
	var s task.Set
	name := 0
	add := func(tk task.Task) {
		tk.Name = taskName(name)
		name++
		s = append(s, tk)
	}
	// Seed with one task of each criticality.
	add(p.drawTask(rnd, task.HI))
	add(p.drawTask(rnd, task.LO))
	for attempts := 0; uAvg(s) < uBound-p.tol(); {
		crit := task.LO
		if rnd.Float64() < p.ProbHI {
			crit = task.HI
		}
		cand := p.drawTask(rnd, crit)
		grown := append(s.Clone(), cand)
		if uAvg(grown) > uBound {
			attempts++
			if attempts > p.maxAttempts() {
				return nil, false
			}
			continue
		}
		cand.Name = taskName(name)
		name++
		s = append(s, cand)
	}
	if uAvg(s) > uBound {
		return nil, false
	}
	if err := s.Validate(); err != nil {
		return nil, false
	}
	return s, true
}

// MustSet retries Set with fresh randomness until it succeeds.
func (p Params) MustSet(rnd *rand.Rand, uBound float64) task.Set {
	for {
		if s, ok := p.Set(rnd, uBound); ok {
			return s
		}
	}
}

// SetWithTargets grows a set to hit the Fig. 7 targets independently:
// U_HI = Σ_{χ=HI} C(HI)/T within ±tol of uHI, and U_LO = Σ_{χ=LO}
// C(LO)/T within ±tol of uLO (the U_χ notation of the figure). The last
// task of each criticality uses the longest period in range so its
// utilization can be tuned to land inside the window.
func (p Params) SetWithTargets(rnd *rand.Rand, uHI, uLO, tol float64) (task.Set, bool) {
	var s task.Set
	name := 0
	add := func(tk task.Task) {
		tk.Name = taskName(name)
		name++
		s = append(s, tk)
	}
	grow := func(crit task.Crit, current func() float64, target float64, maxStep float64) bool {
		attempts := 0
		for current() < target-tol {
			remaining := target - current()
			if remaining <= maxStep {
				// Tailor a closing task on the longest period, where
				// the utilization granularity 1/PeriodMax is finest.
				period := p.PeriodMax
				if crit == task.HI {
					cHI := task.Time(math.Round(remaining * float64(period)))
					if cHI < 1 {
						cHI = 1
					}
					gamma := p.GammaMin + rnd.Float64()*(p.GammaMax-p.GammaMin)
					cLO := task.Time(math.Round(float64(cHI) / gamma))
					if cLO < 1 {
						cLO = 1
					}
					if cLO > cHI {
						cLO = cHI
					}
					add(task.NewImplicitHI("", period, cLO, cHI))
				} else {
					cLO := task.Time(math.Round(remaining * float64(period)))
					if cLO < 1 {
						cLO = 1
					}
					add(task.NewImplicitLO("", period, cLO))
				}
				continue
			}
			cand := p.drawTask(rnd, crit)
			grown := append(s.Clone(), cand)
			var u float64
			if crit == task.HI {
				u = grown.UtilCrit(task.HI, task.HI).Float64()
			} else {
				u = grown.UtilCrit(task.LO, task.LO).Float64()
			}
			if u > target+tol {
				attempts++
				if attempts > p.maxAttempts() {
					return false
				}
				continue
			}
			add(cand)
		}
		return current() <= target+tol
	}
	maxStepHI := p.UtilMax * p.GammaMax
	if maxStepHI > 1 {
		maxStepHI = 1 // C(HI) is capped at the implicit deadline
	}
	okHI := grow(task.HI, func() float64 { return s.UtilCrit(task.HI, task.HI).Float64() }, uHI, maxStepHI)
	okLO := grow(task.LO, func() float64 { return s.UtilCrit(task.LO, task.LO).Float64() }, uLO, p.UtilMax)
	if !okHI || !okLO || len(s) == 0 {
		return nil, false
	}
	if err := s.Validate(); err != nil {
		return nil, false
	}
	return s, true
}

func taskName(i int) string {
	// a, b, ..., z, t26, t27, ...
	if i < 26 {
		return string(rune('a' + i))
	}
	return "t" + strconv.Itoa(i)
}
