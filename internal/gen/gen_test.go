package gen

import (
	"math/rand"
	"testing"

	"mcspeedup/internal/task"
)

func TestSetHitsUtilizationTarget(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	p := Defaults()
	for _, uBound := range []float64{0.3, 0.5, 0.7, 0.9} {
		for i := 0; i < 30; i++ {
			s := p.MustSet(rnd, uBound)
			if err := s.Validate(); err != nil {
				t.Fatalf("U=%.1f: %v", uBound, err)
			}
			got := uAvg(s)
			if got > uBound || got < uBound-p.tol()-1e-9 {
				t.Fatalf("U=%.1f: uAvg = %.4f outside [%.4f, %.4f]", uBound, got, uBound-p.tol(), uBound)
			}
			if len(s.ByCrit(task.HI)) == 0 || len(s.ByCrit(task.LO)) == 0 {
				t.Fatalf("U=%.1f: missing a criticality level", uBound)
			}
		}
	}
}

func TestGeneratedParameterRanges(t *testing.T) {
	rnd := rand.New(rand.NewSource(72))
	p := Defaults()
	for i := 0; i < 50; i++ {
		s := p.MustSet(rnd, 0.6)
		for j := range s {
			tk := &s[j]
			if tk.Period[task.LO] < p.PeriodMin || tk.Period[task.LO] > p.PeriodMax {
				t.Fatalf("period %d outside [%d, %d]", tk.Period[task.LO], p.PeriodMin, p.PeriodMax)
			}
			if tk.Deadline[task.HI] != tk.Period[task.HI] && tk.Crit == task.HI {
				t.Fatalf("HI task not implicit-deadline: %s", tk.String())
			}
			u := tk.Util(task.LO).Float64()
			// Rounding of C = U·T can push the realized utilization
			// slightly outside the drawing range.
			if u < p.UtilMin/2 || u > p.UtilMax*1.1 {
				t.Fatalf("per-task U(LO) = %.4f outside sane range (%s)", u, tk.String())
			}
			if tk.Crit == task.HI {
				g := tk.Gamma().Float64()
				if g < 1 || g > p.GammaMax+0.5 {
					t.Fatalf("γ = %.3f outside range (%s)", g, tk.String())
				}
			}
		}
	}
}

func TestSetWithTargets(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	p := Defaults()
	p.GammaMin, p.GammaMax = 10, 10 // Fig. 7 configuration
	hits := 0
	for i := 0; i < 40; i++ {
		s, ok := p.SetWithTargets(rnd, 0.6, 0.4, 0.025)
		if !ok {
			continue
		}
		hits++
		uHI := s.UtilCrit(task.HI, task.HI).Float64()
		uLO := s.UtilCrit(task.LO, task.LO).Float64()
		if uHI < 0.6-0.025-1e-9 || uHI > 0.6+0.025+1e-9 {
			t.Fatalf("U_HI = %.4f not within 0.6±0.025", uHI)
		}
		if uLO < 0.4-0.025-1e-9 || uLO > 0.4+0.025+1e-9 {
			t.Fatalf("U_LO = %.4f not within 0.4±0.025", uLO)
		}
	}
	if hits < 20 {
		t.Fatalf("only %d/40 target draws succeeded", hits)
	}
}

func TestDeterminism(t *testing.T) {
	p := Defaults()
	a := p.MustSet(rand.New(rand.NewSource(99)), 0.5)
	b := p.MustSet(rand.New(rand.NewSource(99)), 0.5)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic set sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic task %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGammaTenCapsAtPeriod(t *testing.T) {
	rnd := rand.New(rand.NewSource(74))
	p := Defaults()
	p.GammaMin, p.GammaMax = 10, 10
	s := p.MustSet(rnd, 0.5)
	for i := range s {
		if s[i].Crit == task.HI && s[i].WCET[task.HI] > s[i].Period[task.HI] {
			t.Fatalf("C(HI) exceeds implicit deadline: %s", s[i].String())
		}
	}
}

func TestTaskNames(t *testing.T) {
	if taskName(0) != "a" || taskName(25) != "z" || taskName(26) != "t26" {
		t.Errorf("taskName sequence broken: %q %q %q", taskName(0), taskName(25), taskName(26))
	}
}
