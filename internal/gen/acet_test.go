package gen

import (
	"math/rand"
	"testing"

	"mcspeedup/internal/task"
)

func TestACETSampleBounds(t *testing.T) {
	a := DefaultACET()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	const cLO, cHI = 10, 25
	overruns := 0
	hot := a
	hot.OverrunProb = 0.5
	for i := 0; i < 20000; i++ {
		if d := a.Sample(rnd, task.LO, cLO, cHI); d < 1 || d > cLO {
			t.Fatalf("LO sample %d outside [1, %d]", d, cLO)
		}
		d := hot.Sample(rnd, task.HI, cLO, cHI)
		if d < 1 || d > cHI {
			t.Fatalf("HI sample %d outside [1, %d]", d, cHI)
		}
		if d > cLO {
			overruns++
		}
	}
	if overruns < 8000 || overruns > 12000 {
		t.Errorf("overrun count %d far from 50%% of 20000", overruns)
	}
	// A task that cannot overrun must never exceed C(LO), whatever the
	// configured probability.
	always := a
	always.OverrunProb = 1
	for i := 0; i < 100; i++ {
		if d := always.Sample(rnd, task.HI, cLO, cLO); d > cLO {
			t.Fatalf("overrun %d sampled from task with C(HI) = C(LO)", d)
		}
	}
	// Tiny budgets clamp up to the minimum legal demand.
	tiny := ACET{LOFloor: 0, LOCeil: 0, HIFloor: 0, HICeil: 0}
	if d := tiny.Sample(rnd, task.LO, 1, 1); d != 1 {
		t.Fatalf("clamped sample = %d, want 1", d)
	}
}

func TestACETSampleDeterministic(t *testing.T) {
	a := DefaultACET()
	draw := func() []task.Time {
		rnd := rand.New(rand.NewSource(99))
		out := make([]task.Time, 64)
		for i := range out {
			out[i] = a.Sample(rnd, task.Crit(i%2), 20, 37)
		}
		return out
	}
	x, y := draw(), draw()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("draw %d: %d != %d for identical streams", i, x[i], y[i])
		}
	}
}

func TestACETValidateRejects(t *testing.T) {
	for name, a := range map[string]ACET{
		"negative floor":  {LOFloor: -0.1, LOCeil: 1},
		"ceil above one":  {LOCeil: 1.5},
		"inverted band":   {HIFloor: 0.9, HICeil: 0.3, LOCeil: 1},
		"bad probability": {LOCeil: 1, HICeil: 1, OverrunProb: 2},
	} {
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, a)
		}
	}
}
