package gen

import "testing"

func TestSubstreamDeterministic(t *testing.T) {
	if Substream(2015, 3, 7) != Substream(2015, 3, 7) {
		t.Fatal("substream not a pure function of its coordinates")
	}
}

func TestSubstreamCoordinatesIndependent(t *testing.T) {
	// Nearby coordinates must land on distinct stream seeds — the usual
	// failure mode of additive schemes like seed+index, where
	// (point, index) and (point+1, index-1) collide.
	seen := map[int64][3]int64{}
	for _, seed := range []int64{0, 1, 2015, -9} {
		for point := 0; point < 20; point++ {
			for index := 0; index < 20; index++ {
				s := Substream(seed, point, index)
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: (%d,%d,%d) and %v -> %d",
						seed, point, index, prev, s)
				}
				seen[s] = [3]int64{seed, int64(point), int64(index)}
			}
		}
	}
}

func TestSubRandStreamsDiffer(t *testing.T) {
	a := SubRand(2015, 0, 0)
	b := SubRand(2015, 0, 1)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/16 identical draws across adjacent substreams", same)
	}
}

func TestStreamMatchesSubstreamKeying(t *testing.T) {
	// Identical coordinates restart the identical sequence; any changed
	// coordinate lands on an unrelated one.
	a := NewStream(1, 2, 3)
	b := NewStream(1, 2, 3)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for identical coordinates", i)
		}
	}
	b.Reseed(1, 2, 3)
	first := b.Uint64()
	c := NewStream(1, 2, 4)
	if c.Uint64() == first {
		t.Fatal("adjacent index produced the same first draw")
	}
}

func TestStreamInt63nBounds(t *testing.T) {
	s := NewStream(7, 0, 0)
	for _, n := range []int64{1, 2, 3, 10, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Int63n(n); v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[s.Int63n(5)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Int63n(5): value %d drawn %d/50000 times, far from uniform", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	s.Int63n(0)
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(9, 1, 1)
	var sum float64
	for i := 0; i < 20000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g outside [0, 1)", f)
		}
		sum += f
	}
	if mean := sum / 20000; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean %g far from 0.5", mean)
	}
}
