package gen

import "testing"

func TestSubstreamDeterministic(t *testing.T) {
	if Substream(2015, 3, 7) != Substream(2015, 3, 7) {
		t.Fatal("substream not a pure function of its coordinates")
	}
}

func TestSubstreamCoordinatesIndependent(t *testing.T) {
	// Nearby coordinates must land on distinct stream seeds — the usual
	// failure mode of additive schemes like seed+index, where
	// (point, index) and (point+1, index-1) collide.
	seen := map[int64][3]int64{}
	for _, seed := range []int64{0, 1, 2015, -9} {
		for point := 0; point < 20; point++ {
			for index := 0; index < 20; index++ {
				s := Substream(seed, point, index)
				if prev, dup := seen[s]; dup {
					t.Fatalf("collision: (%d,%d,%d) and %v -> %d",
						seed, point, index, prev, s)
				}
				seen[s] = [3]int64{seed, int64(point), int64(index)}
			}
		}
	}
}

func TestSubRandStreamsDiffer(t *testing.T) {
	a := SubRand(2015, 0, 0)
	b := SubRand(2015, 0, 1)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/16 identical draws across adjacent substreams", same)
	}
}
