package stats

import (
	"fmt"
	"math"
)

// Histogram is an HDR-style latency histogram: geometrically spaced
// buckets between Min and Max, so quantile estimates carry a bounded
// relative error (the bucket growth factor) instead of the unbounded
// error of fixed-width buckets, while memory stays a few kilobytes
// however many observations are recorded. cmd/mcs-load records
// request latencies into one and reads p50/p99/p999 back out.
//
// Values below Min clamp into the first bucket, values above Max into a
// dedicated overflow bucket whose quantiles report the maximum observed
// value. A Histogram is not safe for concurrent use; callers that
// record from many goroutines guard it or merge per-worker histograms.
type Histogram struct {
	min, max float64
	ratio    float64   // bucket upper-bound growth factor
	bounds   []float64 // upper bounds, ascending; len = buckets
	counts   []uint64  // len = buckets+1; last slot = overflow
	total    uint64
	sum      float64
	maxSeen  float64
}

// NewHistogram builds a histogram spanning [min, max] with perDecade
// buckets per factor-of-10 (e.g. 10 µs – 10 s at 100 buckets/decade is
// 600 buckets with ≤ 2.4 % relative quantile error). It panics on a
// non-positive range or perDecade.
func NewHistogram(min, max float64, perDecade int) *Histogram {
	if !(min > 0) || !(max > min) {
		panic(fmt.Errorf("stats: NewHistogram needs 0 < min < max, got [%g, %g]", min, max))
	}
	if perDecade <= 0 {
		panic(fmt.Errorf("stats: NewHistogram needs perDecade > 0, got %d", perDecade))
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	n := int(math.Ceil(math.Log(max/min)/math.Log(ratio))) + 1
	bounds := make([]float64, n)
	b := min
	for i := range bounds {
		bounds[i] = b
		b *= ratio
	}
	return &Histogram{
		min:    min,
		max:    max,
		ratio:  ratio,
		bounds: bounds,
		counts: make([]uint64, n+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v <= h.min {
		h.counts[0]++
		return
	}
	if v > h.bounds[len(h.bounds)-1] {
		h.counts[len(h.counts)-1]++
		return
	}
	// Direct index: bucket i covers (min·ratio^(i-1), min·ratio^i].
	i := int(math.Ceil(math.Log(v/h.min) / math.Log(h.ratio)))
	if i < 0 {
		i = 0
	}
	// Guard the float boundary: Log rounding can land one bucket early.
	for i < len(h.bounds) && h.bounds[i] < v {
		i++
	}
	h.counts[i]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of the observations (exact — the sum
// is tracked outside the buckets). It panics on an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		panic(fmt.Errorf("stats: Mean of empty histogram"))
	}
	return h.sum / float64(h.total)
}

// Max returns the maximum observed value (0 on an empty histogram).
func (h *Histogram) Max() float64 { return h.maxSeen }

// HistQuantile returns the q-quantile estimate: the upper bound of the
// bucket holding the ⌈q·count⌉-th observation, so the estimate is an
// upper bound within one bucket ratio of the true value. Overflow
// observations report the exact maximum seen. It panics on an empty
// histogram or q outside [0, 1].
func (h *Histogram) HistQuantile(q float64) float64 {
	if h.total == 0 {
		panic(fmt.Errorf("stats: HistQuantile of empty histogram"))
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Errorf("stats: quantile %v outside [0,1]", q))
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == len(h.counts)-1 {
				return h.maxSeen
			}
			return h.bounds[i]
		}
	}
	return h.maxSeen
}

// Reset discards the observations while keeping the bucket geometry, so
// per-worker histograms can be recycled (the fleet engine reuses one per
// reducer chunk) without reallocating the bounds and counts arrays.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.maxSeen = 0
}

// Merge adds other's observations into h. The histograms must have been
// built with identical parameters; Merge panics otherwise. Merging
// per-worker histograms is how concurrent recorders avoid sharing one
// histogram under a lock.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if len(h.counts) != len(other.counts) || h.min != other.min || h.ratio != other.ratio {
		panic(fmt.Errorf("stats: merging histograms with different bucket layouts"))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
}
