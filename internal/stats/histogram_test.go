package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramQuantilesBoundedError(t *testing.T) {
	// 100 buckets/decade bounds the relative quantile error by the
	// bucket ratio 10^(1/100) ≈ 1.0233.
	h := NewHistogram(10e-6, 10, 100)
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 50000)
	for i := range vals {
		// Log-uniform latencies across 50 µs – 2 s.
		vals[i] = math.Exp(math.Log(50e-6) + r.Float64()*math.Log(2/50e-6))
		h.Observe(vals[i])
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Quantile(vals, q)
		est := h.HistQuantile(q)
		if est < exact*0.999 || est > exact*1.03 {
			t.Errorf("q=%g: histogram estimate %g vs exact %g (rel err %.3f)", q, est, exact, est/exact-1)
		}
	}
	if got := h.Count(); got != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	exactMean := Mean(vals)
	if m := h.Mean(); math.Abs(m-exactMean) > 1e-12 {
		t.Errorf("Mean = %g, want exact %g", m, exactMean)
	}
}

func TestHistogramClampsAndOverflow(t *testing.T) {
	h := NewHistogram(1e-3, 1, 10)
	h.Observe(1e-9) // below min: clamps into the first bucket
	h.Observe(50)   // above max: overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if q := h.HistQuantile(0); q != 1e-3 {
		t.Errorf("q0 = %g, want the min bound 1e-3", q)
	}
	// The overflow observation reports the exact max seen.
	if q := h.HistQuantile(1); q != 50 {
		t.Errorf("q1 = %g, want the exact overflow max 50", q)
	}
	if h.Max() != 50 {
		t.Errorf("Max = %g, want 50", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1e-4, 10, 50)
	b := NewHistogram(1e-4, 10, 50)
	whole := NewHistogram(1e-4, 10, 50)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := math.Exp(math.Log(1e-4) + r.Float64()*math.Log(10/1e-4))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := a.HistQuantile(q), whole.HistQuantile(q); got != want {
			t.Errorf("q=%g: merged %g, whole %g", q, got, want)
		}
	}
	// Mean compares with float slack: the merged sum adds the same
	// values in a different order.
	if a.Max() != whole.Max() || math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged Max/Mean (%g, %g) differ from whole (%g, %g)", a.Max(), a.Mean(), whole.Max(), whole.Mean())
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on layout mismatch")
		}
	}()
	NewHistogram(1e-4, 10, 50).Merge(NewHistogram(1e-3, 10, 50))
}

func TestHistogramEmptyPanics(t *testing.T) {
	h := NewHistogram(1e-3, 1, 10)
	for name, fn := range map[string]func(){
		"quantile": func() { h.HistQuantile(0.5) },
		"mean":     func() { h.Mean() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on empty histogram", name)
				}
			}()
			fn()
		}()
	}
}

// TestHistogramReset pins the recycle contract the fleet reducers rely
// on: Reset discards every observation but keeps the bucket geometry, so
// a recycled histogram observes, merges, and quantiles exactly like a
// fresh one with the same parameters.
func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1e-3, 1e3, 20)
	fresh := NewHistogram(1e-3, 1e3, 20)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		h.Observe(math.Exp(math.Log(1e-3) + r.Float64()*math.Log(1e6)))
	}
	h.Observe(1e9) // land one in the overflow bucket too
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("after Reset: Count = %d, Max = %g, want 0, 0", h.Count(), h.Max())
	}
	vals := []float64{0.002, 0.5, 7, 450, 2e4}
	for _, v := range vals {
		h.Observe(v)
		fresh.Observe(v)
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if got, want := h.HistQuantile(q), fresh.HistQuantile(q); got != want {
			t.Errorf("q=%g: recycled %g, fresh %g", q, got, want)
		}
	}
	if h.Max() != fresh.Max() || h.Mean() != fresh.Mean() {
		t.Errorf("recycled Max/Mean (%g, %g) differ from fresh (%g, %g)",
			h.Max(), h.Mean(), fresh.Max(), fresh.Mean())
	}
	// A reset histogram must still merge into a same-geometry peer.
	fresh.Merge(h)
	if fresh.Count() != 2*uint64(len(vals)) {
		t.Errorf("merge after reset: Count = %d, want %d", fresh.Count(), 2*len(vals))
	}
}

// TestHistogramMergeMixedScales is the bounds regression test for the
// fleet reducers: merging histograms whose bucket layouts differ in any
// parameter — min, span (and hence bucket count), or resolution — must
// panic rather than silently misfile counts, while same-layout
// histograms fed observations at wildly different scales must merge with
// exact bucket-level agreement.
func TestHistogramMergeMixedScales(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on mixed-scale merge", name)
			}
		}()
		fn()
	}
	mustPanic("different min", func() {
		NewHistogram(1e-3, 10, 20).Merge(NewHistogram(1e-2, 10, 20))
	})
	mustPanic("different max", func() {
		NewHistogram(1e-3, 10, 20).Merge(NewHistogram(1e-3, 100, 20))
	})
	mustPanic("different perDecade", func() {
		NewHistogram(1e-3, 10, 20).Merge(NewHistogram(1e-3, 10, 40))
	})

	// Same layout, disjoint scales: one recorder saw sub-min values, the
	// other overflow-range values. The merge must place both piles in the
	// buckets the whole-stream histogram uses.
	lo := NewHistogram(0.1, 1e4, 10)
	hi := NewHistogram(0.1, 1e4, 10)
	whole := NewHistogram(0.1, 1e4, 10)
	for i := 0; i < 100; i++ {
		small := 0.001 * float64(i+1) // clamps into the first bucket
		large := 1e5 + float64(i)     // overflow bucket
		lo.Observe(small)
		hi.Observe(large)
		whole.Observe(small)
		whole.Observe(large)
	}
	lo.Merge(hi)
	if lo.Count() != whole.Count() || lo.Max() != whole.Max() {
		t.Fatalf("mixed-scale merge: Count/Max (%d, %g) != whole (%d, %g)",
			lo.Count(), lo.Max(), whole.Count(), whole.Max())
	}
	for _, q := range []float64{0, 0.49, 0.51, 1} {
		if got, want := lo.HistQuantile(q), whole.HistQuantile(q); got != want {
			t.Errorf("q=%g: merged %g, whole %g", q, got, want)
		}
	}
}
