package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramQuantilesBoundedError(t *testing.T) {
	// 100 buckets/decade bounds the relative quantile error by the
	// bucket ratio 10^(1/100) ≈ 1.0233.
	h := NewHistogram(10e-6, 10, 100)
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 50000)
	for i := range vals {
		// Log-uniform latencies across 50 µs – 2 s.
		vals[i] = math.Exp(math.Log(50e-6) + r.Float64()*math.Log(2/50e-6))
		h.Observe(vals[i])
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Quantile(vals, q)
		est := h.HistQuantile(q)
		if est < exact*0.999 || est > exact*1.03 {
			t.Errorf("q=%g: histogram estimate %g vs exact %g (rel err %.3f)", q, est, exact, est/exact-1)
		}
	}
	if got := h.Count(); got != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	exactMean := Mean(vals)
	if m := h.Mean(); math.Abs(m-exactMean) > 1e-12 {
		t.Errorf("Mean = %g, want exact %g", m, exactMean)
	}
}

func TestHistogramClampsAndOverflow(t *testing.T) {
	h := NewHistogram(1e-3, 1, 10)
	h.Observe(1e-9) // below min: clamps into the first bucket
	h.Observe(50)   // above max: overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if q := h.HistQuantile(0); q != 1e-3 {
		t.Errorf("q0 = %g, want the min bound 1e-3", q)
	}
	// The overflow observation reports the exact max seen.
	if q := h.HistQuantile(1); q != 50 {
		t.Errorf("q1 = %g, want the exact overflow max 50", q)
	}
	if h.Max() != 50 {
		t.Errorf("Max = %g, want 50", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1e-4, 10, 50)
	b := NewHistogram(1e-4, 10, 50)
	whole := NewHistogram(1e-4, 10, 50)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := math.Exp(math.Log(1e-4) + r.Float64()*math.Log(10/1e-4))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := a.HistQuantile(q), whole.HistQuantile(q); got != want {
			t.Errorf("q=%g: merged %g, whole %g", q, got, want)
		}
	}
	// Mean compares with float slack: the merged sum adds the same
	// values in a different order.
	if a.Max() != whole.Max() || math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged Max/Mean (%g, %g) differ from whole (%g, %g)", a.Max(), a.Mean(), whole.Max(), whole.Mean())
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on layout mismatch")
		}
	}()
	NewHistogram(1e-4, 10, 50).Merge(NewHistogram(1e-3, 10, 50))
}

func TestHistogramEmptyPanics(t *testing.T) {
	h := NewHistogram(1e-3, 1, 10)
	for name, fn := range map[string]func(){
		"quantile": func() { h.HistQuantile(0.5) },
		"mean":     func() { h.Mean() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on empty histogram", name)
				}
			}()
			fn()
		}()
	}
}
