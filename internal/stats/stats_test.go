package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestQuantileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); !almostEq(got, c.want) {
			t.Errorf("Quantile(%.3f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Mean(nil) },
		func() { Summarize(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	// 1..11 plus an outlier at 100.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	s := Summarize(vals)
	if s.N != 12 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if !almostEq(s.Median, 6.5) {
		t.Errorf("median = %v, want 6.5", s.Median)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", s.Outliers)
	}
	if s.WhiskerHi != 11 {
		t.Errorf("upper whisker = %v, want 11", s.WhiskerHi)
	}
	if s.WhiskerLo != 1 {
		t.Errorf("lower whisker = %v, want 1", s.WhiskerLo)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(81))}
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := Summarize(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		ordered := s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
		whiskers := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		bounds := s.Min == sorted[0] && s.Max == sorted[len(sorted)-1]
		return ordered && whiskers && bounds && len(s.Outliers) < len(vals)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
