// Package stats provides the small set of descriptive statistics the
// experiment drivers need: quantiles, means, and Tukey box-and-whisker
// summaries matching the box-whisker plots of the paper's Fig. 6.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using linear
// interpolation between order statistics (type-7, the common default).
// It panics on an empty slice or out-of-range q.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		panic(fmt.Errorf("stats: Quantile of empty slice"))
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Errorf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean. It panics on an empty slice.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		panic(fmt.Errorf("stats: Mean of empty slice"))
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Summary is a Tukey five-number summary plus mean and 1.5·IQR whiskers.
type Summary struct {
	N                    int
	Min, Max             float64
	Mean                 float64
	P25, Median, P75     float64
	WhiskerLo, WhiskerHi float64 // furthest points within 1.5·IQR of the box
	Outliers             []float64
}

// Summarize computes the box-whisker summary of the values. It panics on
// an empty slice.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		panic(fmt.Errorf("stats: Summarize of empty slice"))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		P25:    Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		P75:    Quantile(sorted, 0.75),
	}
	iqr := s.P75 - s.P25
	loFence := s.P25 - 1.5*iqr
	hiFence := s.P75 + 1.5*iqr
	s.WhiskerLo, s.WhiskerHi = s.Max, s.Min
	for _, v := range sorted {
		if v >= loFence && v < s.WhiskerLo {
			s.WhiskerLo = v
		}
		if v <= hiFence && v > s.WhiskerHi {
			s.WhiskerHi = v
		}
		if v < loFence || v > hiFence {
			s.Outliers = append(s.Outliers, v)
		}
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g (%d outliers)",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean, len(s.Outliers))
}
