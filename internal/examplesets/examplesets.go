// Package examplesets provides the running example task set of the paper
// (Table I) in both its variants.
//
// The scanned copy of the paper renders Table I's numeric cells
// illegibly, so the parameters below are a reconstruction, found by
// exhaustive search over small integer parameters, that reproduces every
// number the text reports about the example exactly:
//
//   - Example 1: s_min = 4/3 without service degradation, and with the
//     degraded parameters D₂(HI) = 15, T₂(HI) = 20 the required speedup
//     drops below 1 (here 6/7 ≈ 0.857), so "the system can actually slow
//     down in HI mode".
//   - Example 2: the service resetting time is Δ_R = 6 at s = 2
//     (and 9 at the minimum speedup s = 4/3).
package examplesets

import "mcspeedup/internal/task"

// TableI returns the two-task running example without service
// degradation: the LO task keeps its original parameters in HI mode.
//
//	τ₁ HI: C(LO)=2 C(HI)=4 D(LO)=6 D(HI)=9  T(LO)=T(HI)=10
//	τ₂ LO: C=2            D(LO)=D(HI)=10    T(LO)=T(HI)=10
func TableI() task.Set {
	return task.Set{
		task.NewHI("tau1", 10, 6, 9, 2, 4),
		task.NewLO("tau2", 10, 10, 2),
	}
}

// TableIDegraded returns the Example-1 variant in which τ₂'s HI-mode
// service is degraded to D₂(HI) = 15, T₂(HI) = 20.
func TableIDegraded() task.Set {
	s := TableI()
	s[1].Deadline[task.HI] = 15
	s[1].Period[task.HI] = 20
	return s
}
