package examplesets

import (
	"testing"

	"mcspeedup/internal/task"
)

func TestTableIVariantsValidate(t *testing.T) {
	base := TableI()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	deg := TableIDegraded()
	if err := deg.Validate(); err != nil {
		t.Fatal(err)
	}
	if deg[1].Deadline[task.HI] != 15 || deg[1].Period[task.HI] != 20 {
		t.Errorf("degraded parameters: %s", deg[1].String())
	}
	// The constructors return fresh copies.
	base[0].Name = "mutated"
	if TableI()[0].Name != "tau1" {
		t.Error("TableI returns aliased state")
	}
}
