// Package mcspeedup is a library for mixed-criticality real-time
// scheduling with temporary processor speedup, implementing
//
//	P. Huang, P. Kumar, G. Giannopoulou, L. Thiele:
//	"Run and Be Safe: Mixed-Criticality Scheduling with Temporary
//	Processor Speedup", DATE 2015.
//
// Dual-criticality sporadic task sets are scheduled by EDF on a
// uniprocessor. When a HI-criticality task overruns its optimistic WCET
// the system enters HI mode; instead of (or in addition to) degrading or
// terminating LO-criticality tasks, the processor is temporarily sped up
// (DVFS overclocking). The library computes
//
//   - the exact minimum HI-mode speedup factor s_min that guarantees all
//     deadlines (Theorem 2) — MinSpeedup;
//   - the exact service resetting time Δ_R after which the processor is
//     provably idle and can return to LO mode and nominal speed
//     (Theorem 4 / Corollary 5) — ResetTime;
//   - closed-form trade-off bounds for the implicit-deadline special case
//     (Lemmas 6, 7) — ClosedFormSpeedup, ClosedFormReset;
//   - the LO-mode EDF processor-demand test and the minimal
//     virtual-deadline preparation factor — SchedulableLO, MinimalX;
//   - the classical EDF-VD baseline (Baruah et al., ECRTS 2012) —
//     EDFVDAnalyze;
//
// and ships an exact-arithmetic discrete-event simulator of the runtime
// protocol (Simulate), random task-set generators following the paper's
// experimental setup (Generator), the reconstructed flight-management-
// system case study (FMSTasks), and drivers regenerating every table and
// figure of the paper's evaluation (the Experiment* functions).
//
// # Quick start
//
//	set := mcspeedup.Set{
//	    mcspeedup.NewHITask("ctrl", 10, 6, 9, 2, 4),
//	    mcspeedup.NewLOTask("log", 10, 10, 2),
//	}
//	sp, _ := mcspeedup.MinSpeedup(set)       // exact rational s_min
//	rt, _ := mcspeedup.ResetTime(set, sp.Speedup)
//
// All analysis is exact: times are integer ticks and every derived
// quantity is an integer ratio (Rat). See examples/ for runnable
// programs and DESIGN.md for the system inventory.
package mcspeedup

import (
	"math/rand"

	"mcspeedup/internal/adaptive"
	"mcspeedup/internal/core"
	"mcspeedup/internal/edfvd"
	"mcspeedup/internal/examplesets"
	"mcspeedup/internal/fleet"
	"mcspeedup/internal/fms"
	"mcspeedup/internal/gen"
	"mcspeedup/internal/rat"
	"mcspeedup/internal/sim"
	"mcspeedup/internal/task"
)

// --- task model ---

// Time is a duration or instant in integer ticks (the experiment drivers
// use 1 tick = 100 µs).
type Time = task.Time

// Unbounded marks an infinite period/deadline (terminated LO tasks).
const Unbounded = task.Unbounded

// Crit is a criticality level (and operating mode): LO or HI.
type Crit = task.Crit

// Criticality levels / operating modes.
const (
	LO = task.LO
	HI = task.HI
)

// Task is one dual-criticality sporadic task (Section II of the paper).
type Task = task.Task

// Set is a task set scheduled together on one processor.
type Set = task.Set

// NewHITask builds a HI-criticality task: period T, virtual (LO-mode)
// deadline dLO < real deadline dHI, and WCETs cLO ≤ cHI.
func NewHITask(name string, period, dLO, dHI, cLO, cHI Time) Task {
	return task.NewHI(name, period, dLO, dHI, cLO, cHI)
}

// NewLOTask builds a LO-criticality task with identical parameters in
// both modes (no degradation); use Set.DegradeLO or Set.TerminateLO for
// the eq. (14)/(3) transforms.
func NewLOTask(name string, period, deadline, wcet Time) Task {
	return task.NewLO(name, period, deadline, wcet)
}

// NewImplicitHITask and NewImplicitLOTask build the implicit-deadline
// tasks of the Section-V special case.
func NewImplicitHITask(name string, period, cLO, cHI Time) Task {
	return task.NewImplicitHI(name, period, cLO, cHI)
}

// NewImplicitLOTask builds an implicit-deadline LO task.
func NewImplicitLOTask(name string, period, wcet Time) Task {
	return task.NewImplicitLO(name, period, wcet)
}

// ParseSetJSON decodes and validates a task set from JSON.
func ParseSetJSON(data []byte) (Set, error) { return task.ParseJSON(data) }

// --- exact rationals ---

// Rat is an exact rational number; every analysis result is one.
type Rat = rat.Rat

// NewRat returns the normalized rational num/den.
func NewRat(num, den int64) Rat { return rat.New(num, den) }

// RatFromFloat converts a float to the nearest rational with bounded
// denominator (use for user-supplied speed factors).
func RatFromFloat(f float64) Rat { return rat.FromFloat(f, 1<<24) }

// Handy rational constants.
var (
	RatZero   = rat.Zero
	RatOne    = rat.One
	RatTwo    = rat.Two
	RatPosInf = rat.PosInf
)

// --- analysis (the paper's contribution) ---

// SpeedupResult is the Theorem-2 outcome; see MinSpeedup.
type SpeedupResult = core.SpeedupResult

// AnalysisOptions tunes the pseudo-polynomial event walks.
type AnalysisOptions = core.Options

// AnalysisScratch is a reusable walker arena: thread one through
// AnalysisOptions.Scratch when calling the analyses in a tight loop and
// every walk reuses the same storage, making steady-state calls
// allocation-free. Not safe for concurrent use — give each goroutine its
// own. The zero value is ready to use; without one, the analyses fall
// back to a package-level pool that is concurrency-safe and still
// allocation-free in steady state.
type AnalysisScratch = core.Scratch

// MinSpeedup computes the minimum HI-mode processor speedup factor
// s_min = sup_Δ ΣDBF_HI(τ_i, Δ)/Δ of Theorem 2, exactly.
func MinSpeedup(s Set) (SpeedupResult, error) { return core.MinSpeedup(s) }

// MinSpeedupOpts is MinSpeedup with explicit walk options.
func MinSpeedupOpts(s Set, o AnalysisOptions) (SpeedupResult, error) {
	return core.MinSpeedupOpts(s, o)
}

// ResetResult is the Corollary-5 outcome; see ResetTime.
type ResetResult = core.ResetResult

// ResetTime computes the exact service resetting time Δ_R of Corollary 5
// for the given HI-mode speed factor (+Inf when speed does not exceed the
// HI-mode utilization).
func ResetTime(s Set, speed Rat) (ResetResult, error) { return core.ResetTime(s, speed) }

// ResetTimeOpts is ResetTime with explicit walk options.
func ResetTimeOpts(s Set, speed Rat, o AnalysisOptions) (ResetResult, error) {
	return core.ResetTimeOpts(s, speed, o)
}

// SchedulableLO is the exact LO-mode EDF processor-demand test.
func SchedulableLO(s Set) (bool, error) { return core.SchedulableLO(s) }

// SchedulableHI reports HI-mode EDF schedulability at the given speed.
func SchedulableHI(s Set, speed Rat) (bool, error) { return core.SchedulableHI(s, speed) }

// MinimalX finds the smallest uniform overrun-preparation factor x
// (eq. (13)) keeping the set LO-mode schedulable and returns it with the
// transformed set.
func MinimalX(s Set) (Rat, Set, error) { return core.MinimalX(s) }

// ClosedFormSpeedup is the Lemma-6 closed-form upper bound on s_min.
func ClosedFormSpeedup(s Set) Rat { return core.ClosedFormSpeedup(s) }

// ClosedFormReset is the Lemma-7 closed-form upper bound on Δ_R.
func ClosedFormReset(s Set, speed Rat) Rat { return core.ClosedFormReset(s, speed) }

// SustainableOverrunGap implements the Section-IV remark: speedup
// episodes recur at frequency at most 1/tO provided Δ_R ≤ tO.
func SustainableOverrunGap(reset Rat, tO Time) bool {
	return core.SustainableOverrunGap(reset, tO)
}

// --- design-space solvers (the Section-V trade-offs, inverted) ---

// SpeedForResetResult is the outcome of MinSpeedForReset.
type SpeedForResetResult = core.SpeedForResetResult

// MinSpeedForReset computes the infimum HI-mode speed whose service
// resetting time meets the budget ("what speed gets me back to nominal
// within 5 s?"); see SpeedForResetResult.Attained for the open-infimum
// case.
func MinSpeedForReset(s Set, budget Time) (SpeedForResetResult, error) {
	return core.MinSpeedForReset(s, budget)
}

// MinSpeedForResetOpts is MinSpeedForReset with explicit walk options;
// with a Scratch, sweeping many budgets over one set is allocation-free.
func MinSpeedForResetOpts(s Set, budget Time, o AnalysisOptions) (SpeedForResetResult, error) {
	return core.MinSpeedForResetOpts(s, budget, o)
}

// MinimalY finds the smallest uniform service-degradation factor y
// (eq. (14)) whose minimum HI-mode speedup fits under speedCap ("my
// platform turbo-boosts at most 2×; how little degradation suffices?").
func MinimalY(s Set, speedCap Rat) (Rat, Set, error) {
	return core.MinimalY(s, speedCap)
}

// MinimalYOpts is MinimalY with explicit walk options. Candidate
// degradations are screened by a witness certificate at the previous
// decisive Δ before paying a full event walk; results are bit-identical
// to the cold path (set AnalysisOptions.NoWarmStart to force it).
func MinimalYOpts(s Set, speedCap Rat, o AnalysisOptions) (Rat, Set, error) {
	return core.MinimalYOpts(s, speedCap, o)
}

// FeasibleXWindow computes the interval of overrun-preparation factors x
// that keep LO mode schedulable (lower end) while respecting a HI-mode
// speed cap (upper end).
func FeasibleXWindow(s Set, speedCap Rat) (xLo, xHi Rat, err error) {
	return core.FeasibleXWindow(s, speedCap)
}

// FeasibleXWindowOpts is FeasibleXWindow with explicit walk options
// (witness-certificate pruning like MinimalYOpts).
func FeasibleXWindowOpts(s Set, speedCap Rat, o AnalysisOptions) (xLo, xHi Rat, err error) {
	return core.FeasibleXWindowOpts(s, speedCap, o)
}

// --- EDF-VD baseline ---

// EDFVDResult is the EDF-VD analysis outcome.
type EDFVDResult = edfvd.Result

// EDFVDAnalyze runs the classical EDF-VD utilization test (Baruah et al.,
// ECRTS 2012) on an implicit-deadline set.
func EDFVDAnalyze(s Set) (EDFVDResult, error) { return edfvd.Analyze(s) }

// EDFVDTransform materializes an accepted EDF-VD configuration as a
// task set (virtual deadlines applied, LO tasks terminated).
func EDFVDTransform(s Set, r EDFVDResult) (Set, error) { return edfvd.Transform(s, r) }

// --- simulation ---

// SimConfig selects the runtime policy for a simulation run.
type SimConfig = sim.Config

// SimResult aggregates a simulation run.
type SimResult = sim.Result

// Arrival, Workload and the workload builders describe job releases.
type (
	Arrival  = sim.Arrival
	Workload = sim.Workload
)

// OverrunFn decides per released HI job whether it overruns.
type OverrunFn = sim.OverrunFn

// Workload builders.
var (
	NoOverrun     = sim.NoOverrun
	AlwaysOverrun = sim.AlwaysOverrun
)

// SynchronousPeriodic builds the synchronous periodic workload.
func SynchronousPeriodic(s Set, horizon Time, overrun OverrunFn) Workload {
	return sim.SynchronousPeriodic(s, horizon, overrun)
}

// RandomSporadic builds a random sporadic workload with overruns.
func RandomSporadic(rnd *rand.Rand, s Set, horizon Time, overrunProb float64) Workload {
	return sim.RandomSporadic(rnd, s, horizon, overrunProb)
}

// BurstOverruns builds the Section-IV burst pattern: sporadic releases
// with overruns separated by at least gap.
func BurstOverruns(rnd *rand.Rand, s Set, horizon, gap Time) Workload {
	return sim.BurstOverruns(rnd, s, horizon, gap)
}

// JobRecord and TaskResponse expose per-job completion records
// (SimConfig.CollectJobs) and their per-task aggregation.
type (
	JobRecord    = sim.JobRecord
	TaskResponse = sim.TaskResponse
)

// ResponseStats aggregates per-job records by task.
func ResponseStats(s Set, res *SimResult) []TaskResponse { return sim.ResponseStats(s, res) }

// ResponseTable renders per-task response statistics as text.
func ResponseTable(s Set, res *SimResult) string { return sim.ResponseTable(s, res) }

// Simulate runs the discrete-event EDF simulator with mode switching and
// temporary speedup on the given workload.
func Simulate(s Set, w Workload, cfg SimConfig) (*SimResult, error) {
	return sim.Run(s, w, cfg)
}

// SimScratch is the reusable simulation arena: thread one through
// CompiledSim.RunInto to keep tight simulation loops allocation-free.
type SimScratch = sim.Scratch

// CompiledSim is a pre-validated (task set, workload) pair whose RunInto
// reuses caller-owned Result and SimScratch buffers — the
// zero-allocation entry point behind Simulate.
type CompiledSim = sim.Compiled

// CompileSim validates the set and workload once for repeated RunInto
// calls.
func CompileSim(s Set, w Workload) (*CompiledSim, error) { return sim.Compile(s, w) }

// CompileSimSet validates the set alone, for callers generating a fresh
// workload per run (CompiledSim.RunWorkload).
func CompileSimSet(s Set) (*CompiledSim, error) { return sim.CompileSet(s) }

// FleetParams configures a Monte-Carlo fleet: N sampled-ACET simulation
// runs reduced into streaming aggregates, byte-identical for any worker
// count.
type FleetParams = fleet.Params

// FleetSummary is the merged fleet aggregate (JSON and fig-style table
// renderings included).
type FleetSummary = fleet.Summary

// ACETModel is the per-job actual-execution-time sampling model by
// criticality band; the zero value means DefaultACET.
type ACETModel = gen.ACET

// DefaultACET returns the fleet experiments' execution-time model.
func DefaultACET() ACETModel { return gen.DefaultACET() }

// RunFleet executes a Monte-Carlo fleet and returns the merged summary.
func RunFleet(p FleetParams) (*FleetSummary, error) { return fleet.Run(p) }

// Gantt renders a simulation trace (CollectTrace must have been set).
func Gantt(s Set, res *SimResult, width int) string { return sim.Gantt(s, res, width) }

// --- workload generation & case studies ---

// Generator configures the random task-set generator of the paper's
// experimental section (reference [4]'s protocol).
type Generator = gen.Params

// DefaultGenerator returns the Fig. 6 caption parameters (periods
// 2 ms–2 s, per-task U(LO) ∈ [0.01, 0.2], γ ∈ [1, 3]).
func DefaultGenerator() Generator { return gen.Defaults() }

// TicksPerMS converts between milliseconds and ticks in the experiment
// scale (1 tick = 100 µs).
const TicksPerMS = gen.TicksPerMS

// FMSTasks returns the reconstructed industrial flight-management-system
// task set (7 DO-178B level-B + 4 level-C tasks) with WCET uncertainty γ.
func FMSTasks(gamma Rat) (Set, error) { return fms.Tasks(gamma) }

// TableISet returns the paper's running example (Table I).
func TableISet() Set { return examplesets.TableI() }

// TableISetDegraded returns the Example-1 degraded variant.
func TableISetDegraded() Set { return examplesets.TableIDegraded() }

// ExportSimJSON serializes a simulation run (episodes, misses, per-job
// records, trace segments) as indented JSON with exact rational instants.
func ExportSimJSON(s Set, res *SimResult) ([]byte, error) { return sim.ExportJSON(s, res) }

// --- adaptive overclocking governance (the Section-I mechanism) ---

// GovernorBudget models the thermal/power allowance as a token bucket;
// GovernorDecision is one per-episode verdict; Governor makes the
// decisions (full speed → schedulability-floor speed → LO termination).
type (
	GovernorBudget   = adaptive.Budget
	GovernorDecision = adaptive.Decision
	Governor         = adaptive.Governor
)

// TurboBudget builds the bucket for "speed s for at most d ticks from
// full, refilling from empty in rechargeTime ticks" — the Intel-turbo
// style allowance the paper cites.
func TurboBudget(speed Rat, d, rechargeTime Time) GovernorBudget {
	return adaptive.TurboBudget(speed, d, rechargeTime)
}

// NewGovernor validates the configuration (full speed ≥ s_min, feasible
// termination fallback) and returns a per-episode admission governor.
func NewGovernor(s Set, fullSpeed Rat, budget GovernorBudget) (*Governor, error) {
	return adaptive.NewGovernor(s, fullSpeed, budget)
}

// AnalysisReport bundles every analysis for one configuration; see
// AnalyzeSet.
type AnalysisReport = core.Report

// AnalyzeSet runs the complete analysis suite — LO-mode test, Theorem-2
// speedup, Corollary-5 reset, Lemma-6/7 bounds — on the set at the given
// HI-mode speed and returns a renderable report.
func AnalyzeSet(s Set, speed Rat) (AnalysisReport, error) { return core.Analyze(s, speed) }

// MarshalWorkload and ParseWorkload serialize workloads for reproducible
// replay (see mcs-sim -save / -workload).
func MarshalWorkload(w Workload) ([]byte, error) { return sim.MarshalWorkload(w) }

// ParseWorkload decodes a workload JSON file and validates it against
// the task set.
func ParseWorkload(data []byte, s Set) (Workload, error) { return sim.ParseWorkload(data, s) }

// TuneResult is the outcome of TuneDeadlines.
type TuneResult = core.TuneResult

// TuneDeadlines minimizes the required HI-mode speedup over per-task
// virtual-deadline assignments (the non-uniform refinement of eq. (13),
// in the spirit of Ekberg & Yi's demand shaping), subject to exact
// LO-mode schedulability. Pass RatZero for the default step.
func TuneDeadlines(s Set, step Rat) (TuneResult, error) { return core.TuneDeadlines(s, step) }

// TuneDeadlinesOpts is TuneDeadlines with explicit walk options
// (witness-certificate pruning like MinimalYOpts).
func TuneDeadlinesOpts(s Set, step Rat, o AnalysisOptions) (TuneResult, error) {
	return core.TuneDeadlinesOpts(s, step, o)
}

// --- incremental (delta) analysis: edits and sessions ---

// Edit is one task-set edit descriptor: set parameters on a named task
// (atomically, so coupled parameters like D(HI)/T(HI) can move
// together), add a task, or remove one. ParamValue names one parameter
// assignment inside a set-edit.
type (
	Edit       = task.Edit
	ParamValue = task.ParamValue
)

// Edit operations and editable parameters.
const (
	EditSet    = task.OpSet
	EditAdd    = task.OpAdd
	EditRemove = task.OpRemove

	ParamCLO = task.ParamCLO
	ParamCHI = task.ParamCHI
	ParamDLO = task.ParamDLO
	ParamDHI = task.ParamDHI
	ParamTLO = task.ParamTLO
	ParamTHI = task.ParamTHI
)

// SetParam builds the common single-parameter edit.
func SetParam(name, param string, v Time) Edit { return task.SetParam(name, param, v) }

// ApplyEdits applies the edits to a clone of s (all-or-nothing) and
// returns the edited set.
func ApplyEdits(s Set, edits ...Edit) (Set, error) { return s.ApplyEdits(edits...) }

// AnalysisSession is an analyzed task-set state that absorbs Edits and
// re-analyzes incrementally: demand aggregates update in O(changed
// tasks) per edit, and the next Report's walks warm-start at the prior
// decisive witness while staying byte-identical to a cold AnalyzeSet.
// Not safe for concurrent use.
type AnalysisSession = core.Session

// NewAnalysisSession validates the set and speed and returns a session
// whose first Report performs the cold analysis.
func NewAnalysisSession(s Set, speed Rat) (*AnalysisSession, error) {
	return core.NewSession(s, speed)
}
