package mcspeedup_test

// Compiles and runs every example program and checks a signature line of
// each, so the documentation can never silently rot.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples e2e skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"s_min = 4/3", "observed recovery: 2 ticks", "'^' HI-mode"}},
		{"fms", []string{"no degradation:            s_min = 4", "sustainable with ≥ 30 s between overrun bursts: true"}},
		{"overrun_recovery", []string{"analytical Δ_R", "speedup budget"}},
		{"schedulability_region", []string{"diagonal U_HI = U_LO", "2x-speedup"}},
		{"design_space", []string{"within the turbo ceiling", "Policy ablation"}},
		{"turbo_governor", []string{"sustainable burst spacing", "full speed"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
