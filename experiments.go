package mcspeedup

import "mcspeedup/internal/experiments"

// Experiment drivers regenerating the paper's evaluation. Each returns a
// structured result with a Render method emitting fixed-width text; see
// EXPERIMENTS.md for the recorded outputs and the paper-vs-measured
// comparison.

// Table1Result holds Table I and the Example-1/2 numbers.
type Table1Result = experiments.Table1Result

// ExperimentTable1 recomputes Table I's derived quantities
// (s_min = 4/3, degraded s_min < 1, Δ_R(2) = 6).
func ExperimentTable1() (Table1Result, error) { return experiments.Table1() }

// Fig1Result holds the demand/supply curves of Fig. 1.
type Fig1Result = experiments.Fig1Result

// ExperimentFig1 samples the HI-mode demand bound functions of the
// running example against their minimum supply lines.
func ExperimentFig1(horizon Time) (Fig1Result, error) { return experiments.Fig1(horizon) }

// Fig3Result holds the arrived-demand and resetting-time curves of Fig. 3.
type Fig3Result = experiments.Fig3Result

// ExperimentFig3 computes the service-resetting-time study of Fig. 3.
// workers bounds the sweep parallelism (0 = all cores); results are
// identical for every worker count.
func ExperimentFig3(horizon Time, speedSteps, workers int) (Fig3Result, error) {
	return experiments.Fig3(horizon, speedSteps, workers)
}

// Fig4Result holds the closed-form trade-off curves of Fig. 4.
type Fig4Result = experiments.Fig4Result

// ExperimentFig4 evaluates the Lemma-6/7 closed forms over the x/y and
// s/s_min trade-off grids. workers bounds the sweep parallelism (0 =
// all cores); results are identical for every worker count.
func ExperimentFig4(xSteps, speedSteps, workers int) (Fig4Result, error) {
	return experiments.Fig4(xSteps, speedSteps, workers)
}

// Fig5Result holds the FMS contour grids of Fig. 5.
type Fig5Result = experiments.Fig5Result

// ExperimentFig5 runs the flight-management-system study on steps×steps
// grids. workers bounds the sweep parallelism (0 = all cores); results
// are identical for every worker count.
func ExperimentFig5(steps, workers int) (Fig5Result, error) { return experiments.Fig5(steps, workers) }

// Fig6Config and Fig6Result parameterize the synthetic-task-set study.
type (
	Fig6Config = experiments.Fig6Config
	Fig6Result = experiments.Fig6Result
)

// ExperimentFig6 runs the synthetic-task-set study of Fig. 6.
func ExperimentFig6(cfg Fig6Config) (Fig6Result, error) { return experiments.Fig6(cfg) }

// Fig7Config and Fig7Result parameterize the schedulability-region study.
type (
	Fig7Config = experiments.Fig7Config
	Fig7Result = experiments.Fig7Result
)

// ExperimentFig7 runs the schedulability-region study of Fig. 7.
func ExperimentFig7(cfg Fig7Config) (Fig7Result, error) { return experiments.Fig7(cfg) }

// AblationConfig, AblationResult and Policy parameterize the policy
// ablation comparing the reactions to overrun the paper's introduction
// contrasts: termination, degradation, speedup, and speedup+degradation.
type (
	AblationConfig = experiments.AblationConfig
	AblationResult = experiments.AblationResult
	Policy         = experiments.Policy
)

// The four overrun-reaction policies.
const (
	PolicyTerminate = experiments.PolicyTerminate
	PolicyDegrade   = experiments.PolicyDegrade
	PolicySpeedup   = experiments.PolicySpeedup
	PolicyCombined  = experiments.PolicyCombined
)

// ExperimentAblation runs the policy ablation over a shared random
// corpus.
func ExperimentAblation(cfg AblationConfig) (AblationResult, error) {
	return experiments.Ablation(cfg)
}

// Fig2Result is the annotated worst-case-geometry illustration of Fig. 2.
type Fig2Result = experiments.Fig2Result

// ExperimentFig2 renders the Fig. 2 timeline and checks the window
// identity of eq. (9) on the running example.
func ExperimentFig2() Fig2Result { return experiments.Fig2() }

// ServiceQualityConfig and ServiceQualityResult parameterize the
// LO-service study: how much LO-criticality service survives overruns
// under each overrun-reaction policy (paired simulation corpus).
type (
	ServiceQualityConfig = experiments.ServiceQualityConfig
	ServiceQualityResult = experiments.ServiceQualityResult
)

// ExperimentServiceQuality runs the LO-service study.
func ExperimentServiceQuality(cfg ServiceQualityConfig) (ServiceQualityResult, error) {
	return experiments.ServiceQuality(cfg)
}
