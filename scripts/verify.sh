#!/bin/sh
# Tier-1 verification: formatting gate, build, vet (standard suite plus
# the repo's own mcs-vet analyzers), then the full test suite under the
# race detector (the parallel sweep engine in internal/par fans every
# experiment driver out across goroutines, so -race is part of tier-1),
# plus one plain run of internal/core's !race-tagged allocation tests.
# Finally a curl-driven smoke test of the mcs-serve daemon: start it on an
# ephemeral port, hit /healthz, POST the same analysis twice, and assert
# the second request was answered from the content-addressed cache.
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: fail fast, listing the offending files.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# mcs-vet: the custom analyzer suite (ratcheck, determcheck,
# scratchcheck, metricscheck, prunecheck, deltacheck, borrowcheck,
# ctxcheck, lockcheck) — fact-based and interprocedural; see
# docs/STATIC_ANALYSIS.md. It runs twice: under the cmd/go vettool
# protocol, and in module mode against a fresh fact cache, which the
# -ignores audit then replays to fail on stale or unjustified
# //lint:ignore directives.
gobin="$(go env GOPATH)/bin"
go build -o "$gobin/mcs-vet" ./cmd/mcs-vet
go vet -vettool="$gobin/mcs-vet" ./...
vetcache=$(mktemp -d)
MCSVET_CACHE="$vetcache" "$gobin/mcs-vet" .
MCSVET_CACHE="$vetcache" "$gobin/mcs-vet" -ignores .
rm -rf "$vetcache"

# The -race run is the canonical full suite; the extra plain runs cover
# internal/core's and internal/sim's //go:build !race
# allocation-regression tests, which the race detector's allocations
# would falsify.
go test -race ./...
go test -run Alloc ./internal/core/...
go test -run Alloc ./internal/sim/

# Fuzz smoke: the pruned and unpruned demand walks must stay equivalent
# under a short randomized run (the checked-in seed corpus alone already
# ran as part of the suite above).
go test -fuzz FuzzWalkEquivalence -fuzztime 10s -run '^$' ./internal/core/

# Delta fuzz smoke: random edit streams through a Session must reproduce
# the cold analysis byte for byte (the incremental-analysis contract).
go test -fuzz FuzzDeltaEquivalence -fuzztime 10s -run '^$' ./internal/core/

# Plan fuzz smoke: the compiled columnar demand plans must stay
# byte-identical to the scalar per-task walks (Options.NoPlan) on random
# task sets, pruned and unpruned.
go test -fuzz FuzzPlanEquivalence -fuzztime 10s -run '^$' ./internal/core/

# Simulator fuzz smoke: the zero-allocation RunInto hot path must stay
# byte-identical to the frozen reference simulator on random task sets,
# workloads, and configs.
go test -fuzz FuzzSimEquivalence -fuzztime 10s -run '^$' ./internal/sim/

# Bench smoke: every core and sim benchmark must still compile and
# complete one iteration (allocation regressions are pinned by the
# zero-allocation tests; this guards the benchmarks themselves).
go test -bench=. -benchtime=1x -run='^$' ./internal/core/... ./internal/sim/

# --- mcs-serve smoke test -------------------------------------------------
tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mcs-gen" ./cmd/mcs-gen
go build -o "$tmp/mcs-serve" ./cmd/mcs-serve

"$tmp/mcs-gen" -example >"$tmp/tasks.json" 2>/dev/null
printf '{"tasks":%s,"speed":2}' "$(cat "$tmp/tasks.json")" >"$tmp/req.json"

"$tmp/mcs-serve" -addr 127.0.0.1:0 2>"$tmp/serve.log" &
serve_pid=$!

# The daemon announces "listening on http://ADDR" on stderr once ready.
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/.*listening on \(http:[^ ]*\).*/\1/p' "$tmp/serve.log" | head -n 1)
    [ -n "$base" ] && break
    kill -0 "$serve_pid"
    sleep 0.1
done
[ -n "$base" ]

curl -fsS "$base/healthz" | grep -q '"status":"ok"'
curl -fsS -D "$tmp/h1" -o "$tmp/r1" -X POST --data-binary @"$tmp/req.json" "$base/v1/analyze"
curl -fsS -D "$tmp/h2" -o "$tmp/r2" -X POST --data-binary @"$tmp/req.json" "$base/v1/analyze"
grep -qi '^x-cache: miss' "$tmp/h1"
grep -qi '^x-cache: hit' "$tmp/h2"
cmp "$tmp/r1" "$tmp/r2"
grep -q '"safe": true' "$tmp/r1"
curl -fsS "$base/metrics" | grep -q '^mcs_cache_hits_total 1$'

# /v1/batch smoke against the paper's FMS case study: two items (one of
# them the already-cached analysis above), per-item results embedded
# verbatim, and the batch item counters exposed in /metrics.
"$tmp/mcs-gen" -fms >"$tmp/fms.json" 2>/dev/null
printf '{"items":[%s,{"tasks":%s,"minx":true,"speed":4}]}' \
    "$(cat "$tmp/req.json")" "$(cat "$tmp/fms.json")" >"$tmp/batch.json"
curl -fsS -o "$tmp/b1" -X POST --data-binary @"$tmp/batch.json" "$base/v1/batch"
grep -q '"count": 2' "$tmp/b1"
grep -q '"errors": 0' "$tmp/b1"
grep -q '"cache": "hit"' "$tmp/b1"
grep -q '"safe": true' "$tmp/b1"
curl -fsS "$base/metrics" | grep -q '^mcs_batch_items_total 2$'

# /v1/session smoke: create a session on the example set (same set+speed
# the /v1/analyze calls above cached, so even the create is a cache hit),
# stream a C(HI) edit (miss: a delta re-analysis runs), then revert it —
# the fingerprint round-trips, so the revert must hit the original
# cache entry without any analysis run.
sid=$(curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/v1/session" |
    sed -n 's/.*"session": "\([^"]*\)".*/\1/p')
[ -n "$sid" ]
printf '{"action":"edit","session":"%s","edits":[{"op":"set","name":"tau1","params":[{"param":"cHI","value":5}]}]}' "$sid" >"$tmp/edit.json"
printf '{"action":"edit","session":"%s","edits":[{"op":"set","name":"tau1","params":[{"param":"cHI","value":4}]}]}' "$sid" >"$tmp/revert.json"
curl -fsS -D "$tmp/h3" -o "$tmp/s1" -X POST --data-binary @"$tmp/edit.json" "$base/v1/session"
grep -qi '^x-cache: miss' "$tmp/h3"
grep -q '"recomputed": true' "$tmp/s1"
curl -fsS -D "$tmp/h4" -o "$tmp/s2" -X POST --data-binary @"$tmp/revert.json" "$base/v1/session"
grep -qi '^x-cache: hit' "$tmp/h4"
grep -q '"editsApplied": 2' "$tmp/s2"
curl -fsS -X POST --data-binary "{\"action\":\"close\",\"session\":\"$sid\"}" "$base/v1/session" |
    grep -q '"closed":true'
curl -fsS "$base/metrics" | grep -q '^mcs_sessions_created_total 1$'
curl -fsS "$base/metrics" | grep -q '^mcs_session_edits_total 2$'

# /v1/fleet smoke: a small Monte-Carlo fleet over the example set. The
# summary is deterministic per seed, so the repeat must be a cache hit
# with identical bytes, and the replicate counter must count the first
# request only.
printf '{"tasks":%s,"runs":32,"seed":7,"horizon":200}' "$(cat "$tmp/tasks.json")" >"$tmp/fleet.json"
curl -fsS -D "$tmp/h5" -o "$tmp/f1" -X POST --data-binary @"$tmp/fleet.json" "$base/v1/fleet"
curl -fsS -D "$tmp/h6" -o "$tmp/f2" -X POST --data-binary @"$tmp/fleet.json" "$base/v1/fleet"
grep -qi '^x-cache: miss' "$tmp/h5"
grep -qi '^x-cache: hit' "$tmp/h6"
cmp "$tmp/f1" "$tmp/f2"
grep -q '"runs": 32' "$tmp/f1"
curl -fsS "$base/metrics" | grep -q '^mcs_fleet_runs_total 32$'

kill "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "mcs-serve smoke test passed"

# Fleet CLI smoke: -fleet -json on the same parameters must emit the
# same summary bytes the endpoint served (the two surfaces share
# fleet.Summary.JSON, and the fleet is workers-invariant by contract).
go run ./cmd/mcs-sim -fleet 32 -seed 7 -horizon 200 -overrun 0.001 -workers 3 -json - \
    "$tmp/tasks.json" >"$tmp/fleet_cli.json"
cmp "$tmp/fleet_cli.json" "$tmp/f1"
echo "fleet smoke test passed"

# --- cluster + load-harness smoke -----------------------------------------
# Three replicas on loopback: two compute replicas started first (ports
# unknown until they bind), then a router replica whose -self is absent
# from -peers, so it owns no keys and forwards every miss. One analysis
# POSTed through the router must be answered by the owning peer
# (X-MCS-Peer) with exactly one forward on the router's counters.
rep_a_pid=""
rep_b_pid=""
router_pid=""
cluster_cleanup() {
    for pid in "$rep_a_pid" "$rep_b_pid" "$router_pid" "$serve_pid"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cluster_cleanup EXIT INT TERM

go build -o "$tmp/mcs-load" ./cmd/mcs-load

wait_for_addr() { # logfile -> prints host:port
    _addr=""
    for _ in $(seq 1 50); do
        _addr=$(sed -n 's/.*listening on http:\/\/\([^ ]*\).*/\1/p' "$1" | head -n 1)
        [ -n "$_addr" ] && break
        sleep 0.1
    done
    [ -n "$_addr" ]
    echo "$_addr"
}

"$tmp/mcs-serve" -addr 127.0.0.1:0 2>"$tmp/rep_a.log" &
rep_a_pid=$!
"$tmp/mcs-serve" -addr 127.0.0.1:0 2>"$tmp/rep_b.log" &
rep_b_pid=$!
addr_a=$(wait_for_addr "$tmp/rep_a.log")
addr_b=$(wait_for_addr "$tmp/rep_b.log")

"$tmp/mcs-serve" -addr 127.0.0.1:0 -peers "$addr_a,$addr_b" -self router \
    2>"$tmp/router.log" &
router_pid=$!
addr_r=$(wait_for_addr "$tmp/router.log")

curl -fsS "http://$addr_r/readyz" | grep -q '"status":"ready"'
curl -fsS -D "$tmp/hf" -o "$tmp/rf" -X POST --data-binary @"$tmp/req.json" \
    "http://$addr_r/v1/analyze"
grep -qi '^x-mcs-peer: ' "$tmp/hf"
cmp "$tmp/rf" "$tmp/r1" # forwarded bytes == single-node bytes
curl -fsS "http://$addr_r/metrics" | grep -q '^mcs_cluster_forward_total 1$'

# mcs-load smoke: 2 s of low-rate open-loop load against both compute
# replicas, with the report appended to a trajectory file.
"$tmp/mcs-load" -addrs "$addr_a,$addr_b" -duration 2s -rps 20 -steps 1 \
    -corpus 8 -trajectory "$tmp/load_traj.json" -out "$tmp/load.json"
grep -q '"kind": "load"' "$tmp/load.json"
grep -q '"errors": 0' "$tmp/load.json"
grep -q '"kind": "load"' "$tmp/load_traj.json"

for pid in "$rep_a_pid" "$rep_b_pid" "$router_pid"; do
    kill "$pid"
    wait "$pid"
done
rep_a_pid=""
rep_b_pid=""
router_pid=""
echo "cluster + mcs-load smoke test passed"
