#!/bin/sh
# Load-harness trajectory run: start a 3-replica fingerprint-sharded
# mcs-serve cluster on loopback and drive it with mcs-load's open-loop
# Zipf workload, appending the dated p50/p99/p999 + RPS-at-SLO entry to
# the shared trajectory history (BENCH_trajectory.json by default; see
# docs/SERVING.md and docs/PERF.md).
#
# Usage: scripts/loadbench.sh [trajectory-file]
#
# CI runners are noisy, so absolute latencies from this script are
# indicative only — the commit-over-commit signal is the shape: a p99
# regression at the same offered rate, or RPS-at-SLO collapsing.
set -eux

cd "$(dirname "$0")/.."

trajectory="${1:-BENCH_trajectory.json}"

# Fixed loopback ports so every replica can be given the full -peers
# list up front (the same triplet docs/SERVING.md and the placement
# goldens use).
peers="127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103"

tmp=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/mcs-serve" ./cmd/mcs-serve
go build -o "$tmp/mcs-load" ./cmd/mcs-load

for port in 7101 7102 7103; do
    "$tmp/mcs-serve" -addr "127.0.0.1:$port" -peers "$peers" \
        2>"$tmp/rep_$port.log" &
    pids="$pids $!"
done

# Wait for every replica's readiness probe.
for port in 7101 7102 7103; do
    ok=""
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$port/readyz" 2>/dev/null | grep -q '"status":"ready"'; then
            ok=1
            break
        fi
        sleep 0.1
    done
    [ -n "$ok" ]
done

"$tmp/mcs-load" -addrs "$peers" -duration 8s -rps 200 -steps 4 \
    -corpus 64 -zipf 1.1 -seed 1 -trajectory "$trajectory" \
    -out "$tmp/load.json"

cat "$tmp/load.json"
echo "load trajectory entry appended to $trajectory"
