#!/bin/sh
# Regenerate BENCH_core.json, the tracked benchmark trajectory of the
# analysis engine (see docs/PERF.md). Run on an otherwise idle machine;
# ns/op is hardware-dependent, allocs/op should be stable anywhere.
set -eux

cd "$(dirname "$0")/.."

go run ./cmd/mcs-bench -out BENCH_core.json "$@"
