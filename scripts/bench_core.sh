#!/bin/sh
# Regenerate BENCH_core.json, the tracked benchmark trajectory of the
# analysis engine (see docs/PERF.md). Run on an otherwise idle machine;
# ns/op is hardware-dependent, allocs/op should be stable anywhere.
#
# Usage: scripts/bench_core.sh [-cpuprofile] [extra mcs-bench flags...]
#
# -cpuprofile additionally captures a pprof CPU profile of the benchmark
# run into artifacts/bench_cpu.pprof — see the "reading the profile"
# walkthrough in docs/PERF.md. Any remaining arguments pass through to
# mcs-bench (e.g. -grid 5, -compare BENCH_core.json).
set -eux

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-cpuprofile" ]; then
	shift
	mkdir -p artifacts
	set -- -cpuprofile artifacts/bench_cpu.pprof "$@"
fi

# Every run also appends a dated entry (git rev, per-benchmark numbers,
# FMS pruned-vs-unpruned event counters) to BENCH_trajectory.json, the
# commit-over-commit history CI uploads as an artifact.
go run ./cmd/mcs-bench -out BENCH_core.json -trajectory BENCH_trajectory.json "$@"
