#!/bin/sh
# Regenerate BENCH_core.json, the tracked benchmark trajectory of the
# analysis engine (see docs/PERF.md). Run on an otherwise idle machine;
# ns/op is hardware-dependent, allocs/op should be stable anywhere.
set -eux

cd "$(dirname "$0")/.."

# Every run also appends a dated entry (git rev, per-benchmark numbers,
# FMS pruned-vs-unpruned event counters) to BENCH_trajectory.json, the
# commit-over-commit history CI uploads as an artifact.
go run ./cmd/mcs-bench -out BENCH_core.json -trajectory BENCH_trajectory.json "$@"
