package mcspeedup_test

// End-to-end test of the mcs-serve daemon: the real binary is started on
// an ephemeral port and driven over HTTP exactly as a client would,
// including the acceptance criteria of the serving subsystem — the
// /v1/analyze response is byte-identical to mcs-analyze -json on the same
// input, a repeated request is a cache hit visible in /metrics, 32
// concurrent clients are served, and SIGTERM drains gracefully.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startServe launches the daemon on an ephemeral port and returns its
// base URL and a wait function that sends SIGTERM and reports the exit
// error.
func startServe(t *testing.T, bin string, args ...string) (string, func() error) {
	t.Helper()
	return startServeRaw(t, bin, append([]string{"-addr", "127.0.0.1:0"}, args...))
}

// startServeRaw is startServe without the implied ephemeral -addr; the
// cluster e2e needs replicas on pre-reserved ports so a shared -peers
// list can name them.
func startServeRaw(t *testing.T, bin string, args []string) (string, func() error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first stderr line is the startup handshake:
	// "mcs-serve: listening on http://127.0.0.1:PORT".
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("mcs-serve did not report a listening address")
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			return fmt.Errorf("mcs-serve did not exit within the drain budget")
		}
	}
	t.Cleanup(func() { stop() })
	return base, stop
}

func httpPost(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", url, resp.StatusCode, data)
	}
	return data
}

// metricValue extracts the value of an exact metric line ("name 3") or a
// labeled one when name includes the label set.
func metricValue(t *testing.T, metrics []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metrics)
	return 0
}

func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("server e2e skipped in -short mode")
	}
	dir := buildCLIs(t)
	bin := func(tool string) string { return filepath.Join(dir, tool) }

	// The paper's flight-management task set (§VI.A).
	fms, errOut, err := runCLI(t, bin("mcs-gen"), nil, "-fms")
	if err != nil {
		t.Fatalf("mcs-gen -fms: %v\n%s", err, errOut)
	}
	// The CLI reference output: minimal overrun preparation at speed 4
	// (the configuration is SAFE there, so the exit code is 0).
	want, errOut, err := runCLI(t, bin("mcs-analyze"), []byte(fms), "-json", "-minx", "-speed", "4", "-")
	if err != nil {
		t.Fatalf("mcs-analyze -json: %v\n%s", err, errOut)
	}

	base, stop := startServe(t, bin("mcs-serve"))

	// Liveness first.
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/healthz"), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz: %v %+v", err, health)
	}

	// Acceptance: byte-identical to the CLI on the same input.
	body := `{"tasks":` + fms + `,"minx":true,"speed":4}`
	resp, got := httpPost(t, base+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d (%s)", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("first analyze X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(got, []byte(want)) {
		t.Errorf("server response differs from mcs-analyze -json:\n--- server ---\n%s\n--- cli ---\n%s", got, want)
	}

	// Acceptance: the repeat — with task order reversed to prove the
	// canonical content hash, not the raw body, is the key — is a hit.
	var tasks []json.RawMessage
	if err := json.Unmarshal([]byte(fms), &tasks); err != nil {
		t.Fatal(err)
	}
	for i, j := 0, len(tasks)-1; i < j; i, j = i+1, j-1 {
		tasks[i], tasks[j] = tasks[j], tasks[i]
	}
	reversed, err := json.Marshal(tasks)
	if err != nil {
		t.Fatal(err)
	}
	resp, got2 := httpPost(t, base+"/v1/analyze", `{"tasks":`+string(reversed)+`,"minx":true,"speed":4}`)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat analyze X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(got2, []byte(want)) {
		t.Error("cached response differs from the CLI reference")
	}
	metrics := httpGet(t, base+"/metrics")
	if hits := metricValue(t, metrics, "mcs_cache_hits_total"); hits < 1 {
		t.Errorf("cache hits = %g after a repeated request", hits)
	}

	// 32 concurrent clients across every analysis endpoint.
	const clients = 32
	requests := []struct{ endpoint, body string }{
		{"/v1/analyze", body},
		{"/v1/analyze", fms},
		{"/v1/speedup", fms},
		{"/v1/reset", `{"tasks":` + fms + `,"speed":4}`},
		{"/v1/simulate", `{"tasks":` + fms + `,"workload":"random","seed":3,"horizon":100000}`},
	}
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			req := requests[i%len(requests)]
			resp, data := httpPost(t, base+req.endpoint, req.body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d %s: %d (%s)", i, req.endpoint, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()

	// The request counters must account for every client plus the two
	// warm-up analyzes.
	metrics = httpGet(t, base+"/metrics")
	var total float64
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "mcs_requests_total{endpoint=\"/v1/") {
			var v float64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			total += v
		}
	}
	if total != clients+2 {
		t.Errorf("POST requests recorded = %g, want %d", total, clients+2)
	}

	// Contradictory flags are rejected by the service like by the CLI.
	resp, _ = httpPost(t, base+"/v1/analyze", `{"tasks":`+fms+`,"x":0.5,"minx":true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("x+minx: %d, want 400", resp.StatusCode)
	}

	// Acceptance: /v1/batch per-item results are byte-identical to the
	// equivalent individual /v1/analyze calls, with 32 clients posting
	// the same batch concurrently.
	items := []string{
		body,
		fms,
		`{"tasks":` + fms + `,"terminate":true,"speed":4}`,
		`{"tasks":` + fms + `,"y":2,"minx":true,"speed":4}`,
	}
	individual := make([][]byte, len(items))
	for i, item := range items {
		resp, data := httpPost(t, base+"/v1/analyze", item)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze item %d: %d (%s)", i, resp.StatusCode, data)
		}
		individual[i] = bytes.TrimRight(data, "\n")
	}
	batchReq := `{"items":[` + strings.Join(items, ",") + `]}`
	var bwg sync.WaitGroup
	bwg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer bwg.Done()
			resp, data := httpPost(t, base+"/v1/batch", batchReq)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch client %d: %d (%s)", c, resp.StatusCode, data)
				return
			}
			var doc struct {
				Count  int `json:"count"`
				Errors int `json:"errors"`
				Items  []struct {
					Index  int             `json:"index"`
					Error  string          `json:"error"`
					Result json.RawMessage `json:"result"`
				} `json:"items"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Errorf("batch client %d: decoding response: %v", c, err)
				return
			}
			if doc.Count != len(items) || doc.Errors != 0 || len(doc.Items) != len(items) {
				t.Errorf("batch client %d: count=%d errors=%d items=%d", c, doc.Count, doc.Errors, len(doc.Items))
				return
			}
			for i, item := range doc.Items {
				if item.Index != i || item.Error != "" {
					t.Errorf("batch client %d item %d: index=%d error=%q", c, i, item.Index, item.Error)
					continue
				}
				if !bytes.Equal(item.Result, individual[i]) {
					t.Errorf("batch client %d item %d: result differs from individual /v1/analyze body", c, i)
				}
			}
		}(c)
	}
	bwg.Wait()

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}
