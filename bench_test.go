package mcspeedup_test

// One benchmark per table/figure of the paper's evaluation (the bench
// harness of DESIGN.md §6), plus micro-benchmarks of the core analyses
// the experiments are built from. Figure benches run scaled-down
// configurations so `go test -bench=.` completes in seconds; the full-
// scale runs are produced by cmd/mcs-experiments.

import (
	"fmt"
	"math/rand"
	"testing"

	"mcspeedup"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig1(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig3(30, 20, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig4(9, 13, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig5(5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentFig6(mcspeedup.Fig6Config{
			SetsPerPoint: 10,
			UBounds:      []float64{0.5, 0.7, 0.9},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentFig7(mcspeedup.Fig7Config{
			SetsPerPoint: 5,
			Grid:         []float64{0.3, 0.6, 0.85},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentAblation(mcspeedup.AblationConfig{
			SetsPerPoint: 10,
			UBounds:      []float64{0.5, 0.7, 0.9},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the analyses underlying every figure ---

func BenchmarkMinSpeedForReset(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedForReset(set, 50000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalY(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(77))
	var prepared mcspeedup.Set
	for { // redraw until the LO mode is feasible for some x
		set := g.MustSet(rnd, 0.7)
		if _, p, err := mcspeedup.MinimalX(set); err == nil {
			prepared = p
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mcspeedup.MinimalY(prepared, mcspeedup.RatTwo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuneDeadlines(b *testing.B) {
	set := benchSet(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.TuneDeadlines(set, mcspeedup.RatZero); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSet(b *testing.B, uBound float64) mcspeedup.Set {
	b.Helper()
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), uBound)
	set, err := set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		b.Fatal(err)
	}
	return prepared
}

func BenchmarkMinSpeedupTableI(b *testing.B) {
	set := mcspeedup.TableISet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinSpeedupSynthetic(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinSpeedupFMS(b *testing.B) {
	set, err := mcspeedup.FMSTasks(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	set, err = set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(prepared); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResetTimeSynthetic(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ResetTime(set, mcspeedup.RatTwo); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSet100 builds a deterministic 100-task set (60 HI + 40 LO,
// harmonic periods so the hyperperiod stays small and the analyses
// terminate exactly) degraded and prepared the same way the experiment
// drivers prepare their corpora. Large n stresses the event heap and
// per-event bookkeeping of the walker-based analyses.
func benchSet100(b *testing.B) mcspeedup.Set {
	b.Helper()
	var set mcspeedup.Set
	for i := 0; i < 60; i++ {
		period := mcspeedup.Time(400 << (i % 3)) // 400, 800, 1600
		set = append(set, mcspeedup.NewImplicitHITask(fmt.Sprintf("h%02d", i), period, 1, 2))
	}
	for i := 0; i < 40; i++ {
		period := mcspeedup.Time(300 << (i % 3)) // 300, 600, 1200
		set = append(set, mcspeedup.NewImplicitLOTask(fmt.Sprintf("l%02d", i), period, 1))
	}
	degraded, err := set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(degraded)
	if err != nil {
		b.Fatal(err)
	}
	return prepared
}

func BenchmarkMinSpeedup100Tasks(b *testing.B) {
	set := benchSet100(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResetTime100Tasks(b *testing.B) {
	set := benchSet100(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ResetTime(set, mcspeedup.RatTwo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulableLO(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.SchedulableLO(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalX(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mcspeedup.MinimalX(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedFormSpeedup(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mcspeedup.ClosedFormSpeedup(set)
	}
}

func BenchmarkEDFVDAnalyze(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.EDFVDAnalyze(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateOverrunBursts(b *testing.B) {
	set := mcspeedup.TableISet()
	w := mcspeedup.SynchronousPeriodic(set, 1000, mcspeedup.AlwaysOverrun)
	cfg := mcspeedup.SimConfig{Speedup: mcspeedup.RatTwo}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mcspeedup.Simulate(set, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Misses) != 0 {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkGenerateTaskSet(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MustSet(rnd, 0.8)
	}
}
