package mcspeedup_test

// One benchmark per table/figure of the paper's evaluation (the bench
// harness of DESIGN.md §6), plus micro-benchmarks of the core analyses
// the experiments are built from. Figure benches run scaled-down
// configurations so `go test -bench=.` completes in seconds; the full-
// scale runs are produced by cmd/mcs-experiments.

import (
	"math/rand"
	"testing"

	"mcspeedup"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig1(30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig3(30, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig4(9, 13); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ExperimentFig5(5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentFig6(mcspeedup.Fig6Config{
			SetsPerPoint: 10,
			UBounds:      []float64{0.5, 0.7, 0.9},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentFig7(mcspeedup.Fig7Config{
			SetsPerPoint: 5,
			Grid:         []float64{0.3, 0.6, 0.85},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := mcspeedup.ExperimentAblation(mcspeedup.AblationConfig{
			SetsPerPoint: 10,
			UBounds:      []float64{0.5, 0.7, 0.9},
			Seed:         int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the analyses underlying every figure ---

func BenchmarkMinSpeedForReset(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedForReset(set, 50000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalY(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(77))
	var prepared mcspeedup.Set
	for { // redraw until the LO mode is feasible for some x
		set := g.MustSet(rnd, 0.7)
		if _, p, err := mcspeedup.MinimalX(set); err == nil {
			prepared = p
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mcspeedup.MinimalY(prepared, mcspeedup.RatTwo); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSet(b *testing.B, uBound float64) mcspeedup.Set {
	b.Helper()
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), uBound)
	set, err := set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		b.Fatal(err)
	}
	return prepared
}

func BenchmarkMinSpeedupTableI(b *testing.B) {
	set := mcspeedup.TableISet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinSpeedupSynthetic(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinSpeedupFMS(b *testing.B) {
	set, err := mcspeedup.FMSTasks(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	set, err = set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		b.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.MinSpeedup(prepared); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResetTimeSynthetic(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.ResetTime(set, mcspeedup.RatTwo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulableLO(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.SchedulableLO(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimalX(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mcspeedup.MinimalX(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosedFormSpeedup(b *testing.B) {
	set := benchSet(b, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mcspeedup.ClosedFormSpeedup(set)
	}
}

func BenchmarkEDFVDAnalyze(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	set := g.MustSet(rand.New(rand.NewSource(99)), 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcspeedup.EDFVDAnalyze(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateOverrunBursts(b *testing.B) {
	set := mcspeedup.TableISet()
	w := mcspeedup.SynchronousPeriodic(set, 1000, mcspeedup.AlwaysOverrun)
	cfg := mcspeedup.SimConfig{Speedup: mcspeedup.RatTwo}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mcspeedup.Simulate(set, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Misses) != 0 {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkGenerateTaskSet(b *testing.B) {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MustSet(rnd, 0.8)
	}
}
