// Command mcs-analyze runs the paper's analyses on a task set given as
// JSON (file argument or stdin) and prints the LO-mode schedulability
// verdict, the minimum HI-mode speedup (Theorem 2), the service resetting
// time (Corollary 5), and the closed-form bounds (Lemmas 6–7).
//
// Usage:
//
//	mcs-analyze [flags] [taskset.json]
//
//	-speed float    HI-mode speed factor for Δ_R (default 2)
//	-x float        apply eq. (13): shorten HI virtual deadlines by x
//	-minx           apply the minimal feasible x instead
//	-y float        apply eq. (14): degrade LO tasks by y
//	-terminate      apply eq. (3): terminate LO tasks in HI mode
//	-json           emit the report as JSON (the exact bytes the
//	                mcs-serve /v1/analyze endpoint returns)
//
// -x and -minx are mutually exclusive (minx computes the x), as are
// -terminate and -y (termination is the y → ∞ limit of degradation);
// contradictory combinations are rejected with a non-zero exit.
//
// The task-set JSON format is the one produced by mcs-gen:
//
//	[{"name":"tau1","crit":"HI","period":[10,10],
//	  "deadline":[6,9],"wcet":[2,4]}, ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mcspeedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-analyze: ")
	var (
		speed     = flag.Float64("speed", 2, "HI-mode speed factor for the resetting-time analysis")
		xFactor   = flag.Float64("x", 0, "overrun-preparation factor (0 = keep deadlines as given)")
		minX      = flag.Bool("minx", false, "use the minimal feasible overrun-preparation factor")
		yFactor   = flag.Float64("y", 0, "LO-task degradation factor (0 = keep parameters as given)")
		terminate = flag.Bool("terminate", false, "terminate LO tasks in HI mode")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	if *xFactor > 0 && *minX {
		log.Fatal("-x and -minx are mutually exclusive: -minx computes the minimal feasible x itself")
	}
	if *terminate && *yFactor > 0 {
		log.Fatal("-terminate and -y are mutually exclusive: termination is the y → ∞ limit of degradation")
	}

	data, err := readInput(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	set, err := mcspeedup.ParseSetJSON(data)
	if err != nil {
		log.Fatal(err)
	}

	if *terminate {
		set = set.TerminateLO()
	}
	if *yFactor > 0 {
		set, err = set.DegradeLO(mcspeedup.RatFromFloat(*yFactor))
		if err != nil {
			log.Fatal(err)
		}
	}
	switch {
	case *minX:
		x, prepared, err := mcspeedup.MinimalX(set)
		if err != nil {
			log.Fatal(err)
		}
		set = prepared
		if !*jsonOut {
			fmt.Printf("minimal overrun preparation: x = %v (%.4f)\n", x, x.Float64())
		}
	case *xFactor > 0:
		set, err = set.ShortenHIDeadlines(mcspeedup.RatFromFloat(*xFactor))
		if err != nil {
			log.Fatal(err)
		}
	}

	report, err := mcspeedup.AnalyzeSet(set, mcspeedup.RatFromFloat(*speed))
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		out, err := report.MarshalIndent()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(report.Render())
	}
	if !report.Safe() {
		os.Exit(1)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
