// Command mcs-serve runs the paper's analyses as a long-running HTTP/JSON
// service with content-addressed result caching, bounded-concurrency
// admission control, and Prometheus-style metrics.
//
// Usage:
//
//	mcs-serve [flags]
//
//	-addr string            listen address (default "127.0.0.1:8080";
//	                        use port 0 for an ephemeral port)
//	-inflight int           max concurrently computed analyses
//	                        (default GOMAXPROCS; cache hits bypass this)
//	-admission-wait dur     how long a request waits for a free slot
//	                        before 429 (default 100ms)
//	-timeout dur            per-request deadline (default 30s)
//	-cache int              result-cache capacity in entries (default 1024)
//	-max-body int           request-body cap in bytes (default 8 MiB)
//	-max-sim-horizon int    /v1/simulate horizon cap in ticks (default 2e6)
//	-max-sessions int       live /v1/session cap, LRU-evicted (default 64)
//	-drain dur              graceful-shutdown drain budget (default 10s)
//	-drain-grace dur        delay between /readyz going 503 and the
//	                        listener closing, so load balancers observe
//	                        the flip before connections are refused
//	                        (default 0)
//	-peers string           comma-separated replica addresses forming a
//	                        fingerprint-sharded cluster (empty =
//	                        single-node). Every replica must get the
//	                        same list; see docs/SERVING.md.
//	-self string            this replica's own entry in -peers (default:
//	                        the resolved listen address). A -self absent
//	                        from -peers makes this a pure router.
//	-vnodes int             consistent-hash virtual nodes per member
//	                        (default 64)
//	-no-forward             compute every miss locally instead of
//	                        proxying to the owning replica
//	-peer-timeout dur       cap on one forwarded peer request (default 10s)
//	-pprof string           serve net/http/pprof on this extra LOOPBACK
//	                        address (e.g. 127.0.0.1:6060); empty = off.
//	                        Refused for non-loopback addresses; the
//	                        profiling handlers never join the public mux.
//
// Endpoints: POST /v1/analyze, /v1/session, /v1/speedup, /v1/reset,
// /v1/simulate; GET /healthz, /readyz, /v1/cluster, /metrics. See
// internal/server for the request formats.
//
// On SIGINT/SIGTERM the server flips /readyz to 503, waits the
// -drain-grace, then stops accepting connections and drains in-flight
// requests for up to the -drain budget before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mcspeedup/internal/server"
	"mcspeedup/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-serve: ")
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
		inflight      = flag.Int("inflight", 0, "max concurrently computed analyses (0 = GOMAXPROCS)")
		admissionWait = flag.Duration("admission-wait", 100*time.Millisecond, "wait for a free slot before 429")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		cacheEntries  = flag.Int("cache", 1024, "result-cache capacity in entries")
		maxBody       = flag.Int64("max-body", 8<<20, "request-body cap in bytes")
		maxSimHorizon = flag.Int64("max-sim-horizon", 2_000_000, "simulate-horizon cap in ticks")
		maxBatch      = flag.Int("max-batch", 256, "max task sets per /v1/batch request")
		maxSessions   = flag.Int("max-sessions", 64, "max live /v1/session sessions (LRU-evicted beyond)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		drainGrace    = flag.Duration("drain-grace", 0, "delay between /readyz flipping 503 and the listener closing")
		peers         = flag.String("peers", "", "comma-separated replica addresses forming a cluster (empty = single-node)")
		self          = flag.String("self", "", "this replica's entry in -peers (default: the resolved listen address)")
		vnodes        = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = 64)")
		noForward     = flag.Bool("no-forward", false, "compute every miss locally instead of proxying to the owner")
		peerTimeout   = flag.Duration("peer-timeout", 10*time.Second, "cap on one forwarded peer request")
		pprofAddr     = flag.String("pprof", "", "serve /debug/pprof on this extra loopback address (empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		pln, err := startPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer pln.Close()
		log.Printf("pprof listening on http://%s (loopback only)", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	peerList := splitPeers(*peers)
	clusterSelf := *self
	if len(peerList) > 0 && clusterSelf == "" {
		clusterSelf = ln.Addr().String()
	}

	svc := server.New(server.Config{
		MaxInFlight:    *inflight,
		AdmissionWait:  *admissionWait,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheEntries,
		MaxBodyBytes:   *maxBody,
		MaxSimHorizon:  task.Time(*maxSimHorizon),
		MaxBatchItems:  *maxBatch,
		MaxSessions:    *maxSessions,
		ClusterPeers:   peerList,
		ClusterSelf:    clusterSelf,
		ClusterVNodes:  *vnodes,
		NoForward:      *noForward,
		PeerTimeout:    *peerTimeout,
	})
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// The handler enforces its own per-request deadline; these bound
		// pathological clients.
		ReadTimeout:  *timeout + 10*time.Second,
		WriteTimeout: *timeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	if len(peerList) > 0 {
		log.Printf("cluster of %d replicas, self=%s (vnodes=%d, forward=%t)",
			len(peerList), clusterSelf, *vnodes, !*noForward)
	}
	// The "listening on" line is the startup handshake scripts parse
	// (scripts/verify.sh, server_e2e_test.go); keep its shape stable.
	log.Printf("listening on http://%s", ln.Addr().String())
	svc.SetReady()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		// Serve never returns nil; any return without a signal is fatal.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Flip /readyz to 503 first and give load balancers -drain-grace to
	// notice before the listener stops accepting.
	svc.BeginDrain()
	if *drainGrace > 0 {
		log.Printf("shutting down: readiness dropped, holding %v before closing the listener", *drainGrace)
		time.Sleep(*drainGrace)
	}
	log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
		srv.Close()
		os.Exit(1)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained; bye")
}

// splitPeers parses the -peers flag: comma-separated host:port entries,
// blanks dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// startPprof serves the net/http/pprof handlers — which the blank import
// above registered on http.DefaultServeMux, NOT on the service mux that
// server.New builds — on their own listener. The address must be a
// loopback address: profiling exposes heap contents and symbol names, so
// a stray flag value must not be able to put it on a public interface.
func startPprof(addr string) (net.Listener, error) {
	if err := requireLoopback(addr); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return ln, nil
}

// requireLoopback rejects any host:port whose host is not a loopback
// address. An empty host ("":6060) would bind every interface, so it is
// rejected too.
func requireLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof address %q: %v", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("-pprof address %q is not loopback-only; refusing to expose profiling", addr)
	}
	return nil
}
