// Command mcs-serve runs the paper's analyses as a long-running HTTP/JSON
// service with content-addressed result caching, bounded-concurrency
// admission control, and Prometheus-style metrics.
//
// Usage:
//
//	mcs-serve [flags]
//
//	-addr string            listen address (default "127.0.0.1:8080";
//	                        use port 0 for an ephemeral port)
//	-inflight int           max concurrently computed analyses
//	                        (default GOMAXPROCS; cache hits bypass this)
//	-admission-wait dur     how long a request waits for a free slot
//	                        before 429 (default 100ms)
//	-timeout dur            per-request deadline (default 30s)
//	-cache int              result-cache capacity in entries (default 1024)
//	-max-body int           request-body cap in bytes (default 8 MiB)
//	-max-sim-horizon int    /v1/simulate horizon cap in ticks (default 2e6)
//	-max-sessions int       live /v1/session cap, LRU-evicted (default 64)
//	-drain dur              graceful-shutdown drain budget (default 10s)
//	-pprof string           serve net/http/pprof on this extra LOOPBACK
//	                        address (e.g. 127.0.0.1:6060); empty = off.
//	                        Refused for non-loopback addresses; the
//	                        profiling handlers never join the public mux.
//
// Endpoints: POST /v1/analyze, /v1/session, /v1/speedup, /v1/reset,
// /v1/simulate; GET /healthz, /metrics. See internal/server for the
// request formats.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to the -drain budget before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux only
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcspeedup/internal/server"
	"mcspeedup/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-serve: ")
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
		inflight      = flag.Int("inflight", 0, "max concurrently computed analyses (0 = GOMAXPROCS)")
		admissionWait = flag.Duration("admission-wait", 100*time.Millisecond, "wait for a free slot before 429")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		cacheEntries  = flag.Int("cache", 1024, "result-cache capacity in entries")
		maxBody       = flag.Int64("max-body", 8<<20, "request-body cap in bytes")
		maxSimHorizon = flag.Int64("max-sim-horizon", 2_000_000, "simulate-horizon cap in ticks")
		maxBatch      = flag.Int("max-batch", 256, "max task sets per /v1/batch request")
		maxSessions   = flag.Int("max-sessions", 64, "max live /v1/session sessions (LRU-evicted beyond)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		pprofAddr     = flag.String("pprof", "", "serve /debug/pprof on this extra loopback address (empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		pln, err := startPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer pln.Close()
		log.Printf("pprof listening on http://%s (loopback only)", pln.Addr().String())
	}

	svc := server.New(server.Config{
		MaxInFlight:    *inflight,
		AdmissionWait:  *admissionWait,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheEntries,
		MaxBodyBytes:   *maxBody,
		MaxSimHorizon:  task.Time(*maxSimHorizon),
		MaxBatchItems:  *maxBatch,
		MaxSessions:    *maxSessions,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// The handler enforces its own per-request deadline; these bound
		// pathological clients.
		ReadTimeout:  *timeout + 10*time.Second,
		WriteTimeout: *timeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	// The "listening on" line is the startup handshake scripts parse
	// (scripts/verify.sh, server_e2e_test.go); keep its shape stable.
	log.Printf("listening on http://%s", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		// Serve never returns nil; any return without a signal is fatal.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests (up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("forced shutdown: %v", err)
		srv.Close()
		os.Exit(1)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained; bye")
}

// startPprof serves the net/http/pprof handlers — which the blank import
// above registered on http.DefaultServeMux, NOT on the service mux that
// server.New builds — on their own listener. The address must be a
// loopback address: profiling exposes heap contents and symbol names, so
// a stray flag value must not be able to put it on a public interface.
func startPprof(addr string) (net.Listener, error) {
	if err := requireLoopback(addr); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return ln, nil
}

// requireLoopback rejects any host:port whose host is not a loopback
// address. An empty host ("":6060) would bind every interface, so it is
// rejected too.
func requireLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof address %q: %v", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("-pprof address %q is not loopback-only; refusing to expose profiling", addr)
	}
	return nil
}
