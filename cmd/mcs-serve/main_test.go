package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mcspeedup/internal/server"
)

// TestPprofAbsentFromServingMux is the guard behind the -pprof design:
// this test binary links net/http/pprof (the blank import in main.go), so
// its handlers ARE registered on http.DefaultServeMux — and the service
// mux must still know nothing about them. If server.Handler() ever
// reaches DefaultServeMux (e.g. someone "simplifies" it to http.Handle),
// these requests start returning profiles and this test fails.
func TestPprofAbsentFromServingMux(t *testing.T) {
	svc := server.New(server.Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, p := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on the serving mux: status %d, want 404", p, resp.StatusCode)
		}
	}

	// Sanity: the same mux still serves its real endpoints.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
}

// TestStartPprofLoopback exercises the real -pprof code path: a loopback
// listener serves the profile index, while non-loopback and
// all-interfaces addresses are refused before any listener is opened.
func TestStartPprofLoopback(t *testing.T) {
	ln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Errorf("pprof index: status %d, body %q", resp.StatusCode, body)
	}

	for _, bad := range []string{"0.0.0.0:6060", ":6060", "10.1.2.3:6060", "example.com:6060", "127.0.0.1"} {
		if _, err := startPprof(bad); err == nil {
			t.Errorf("startPprof(%q) accepted a non-loopback address", bad)
		}
	}
}

// TestRequireLoopback pins the address classification.
func TestRequireLoopback(t *testing.T) {
	for _, ok := range []string{"127.0.0.1:6060", "localhost:0", "[::1]:6060", "127.0.0.2:80"} {
		if err := requireLoopback(ok); err != nil {
			t.Errorf("requireLoopback(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"0.0.0.0:6060", ":6060", "192.168.0.1:6060", "[::]:6060", "no-port", ""} {
		if err := requireLoopback(bad); err == nil {
			t.Errorf("requireLoopback(%q) = nil, want error", bad)
		}
	}
}
