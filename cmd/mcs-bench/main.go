// Command mcs-bench measures the analysis engine's steady-state
// performance and writes the machine-readable trajectory BENCH_core.json
// tracked at the repository root (see docs/PERF.md). It benchmarks the
// hot analysis paths with testing.Benchmark — so ns/op, B/op, and
// allocs/op carry the exact semantics of `go test -bench` — plus one
// timed run of the Fig.-5 design-space sweep as an end-to-end wall-clock
// probe.
//
// Usage:
//
//	mcs-bench [-out BENCH_core.json] [-trajectory BENCH_trajectory.json]
//	          [-grid 9] [-workers 0] [-compare BENCH_core.json]
//	          [-cpuprofile bench.pprof]
//
// Regenerate the checked-in file with scripts/bench_core.sh. Absolute
// numbers are machine-dependent; allocs/op is the portable signal the
// regression tests pin (see internal/core's zero-allocation tests).
//
// -compare diffs the fresh numbers against a baseline BENCH_core.json
// and exits nonzero on a regression: any allocs/op increase (the
// machine-independent counter), or a ns/op slowdown beyond
// -compare-tol (default 15%). CI's perf-gate job runs the comparison
// with -compare-ns-fail=false, demoting wall-clock drift to a warning
// annotation — shared runners are too noisy for a hard ns/op wall.
//
// -cpuprofile writes a pprof CPU profile covering the benchmark loops
// and the Fig.-5 sweep; docs/PERF.md has a "reading the profile"
// walkthrough.
//
// -trajectory appends one dated entry — git revision, per-benchmark
// numbers, and the pruned-vs-unpruned event counters of the FMS walks —
// to a JSON-array history file, so performance can be compared across
// commits (CI uploads the file as a build artifact). The event counters
// are machine-independent: they count examined demand events, the
// algorithmic work the pruning of docs/PERF.md removes.
//
// The entry also carries a vetWallTime row: the wall-clock of a full
// mcs-vet module sweep over -vetroot, cold into a fresh fact cache and
// warm replaying from it — the number that keeps the fact cache honest
// across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"mcspeedup"
	"mcspeedup/internal/lint"
	"mcspeedup/internal/lint/suite"
)

// benchDoc is the BENCH_core.json layout. GoMaxProcs and CPUModel
// qualify the machine the ns/op numbers came from (a baseline taken at
// GOMAXPROCS=1 or on different silicon is not comparable); both are
// omitempty so trajectory entries written before they existed re-marshal
// unchanged.
type benchDoc struct {
	GeneratedAt string       `json:"generatedAt"`
	GoVersion   string       `json:"goVersion"`
	NumCPU      int          `json:"numCPU"`
	GoMaxProcs  int          `json:"gomaxprocs,omitempty"`
	CPUModel    string       `json:"cpuModel,omitempty"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	Fig5        fig5Entry    `json:"fig5Sweep"`
	VetWallTime *vetEntry    `json:"vetWallTime,omitempty"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

type fig5Entry struct {
	Grid    int     `json:"grid"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// vetEntry is one mcs-vet module sweep: cold against a fresh fact
// cache, then warm replaying from it. The cold/warm ratio is the fact
// cache's value; packages and cache hits pin that the warm run really
// replayed everything.
type vetEntry struct {
	Packages      int     `json:"packages"`
	ColdSeconds   float64 `json:"coldSeconds"`
	WarmSeconds   float64 `json:"warmSeconds"`
	WarmCacheHits int     `json:"warmCacheHits"`
}

// trajectoryEntry is one element of the BENCH_trajectory.json array: the
// same measurements as BENCH_core.json plus the commit they were taken at
// and the FMS event counters, which compare across machines.
type trajectoryEntry struct {
	Date        string       `json:"date"`
	GitRev      string       `json:"gitRev"`
	GoVersion   string       `json:"goVersion"`
	NumCPU      int          `json:"numCPU"`
	GoMaxProcs  int          `json:"gomaxprocs,omitempty"`
	CPUModel    string       `json:"cpuModel,omitempty"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	FMSEvents   eventsEntry  `json:"fmsEvents"`
	VetWallTime *vetEntry    `json:"vetWallTime,omitempty"`
}

// eventsEntry records how many demand events each exact FMS analysis
// examined with pruning on (the default walk, plus its bulk-skip count)
// and with pruning off.
type eventsEntry struct {
	SpeedupExamined  int `json:"speedupExamined"`
	SpeedupJumps     int `json:"speedupJumps"`
	SpeedupUnpruned  int `json:"speedupUnpruned"`
	ResetExamined    int `json:"resetExamined"`
	ResetJumps       int `json:"resetJumps"`
	ResetUnpruned    int `json:"resetUnpruned"`
	SpeedForExamined int `json:"speedForResetExamined"`
	SpeedForJumps    int `json:"speedForResetJumps"`
	SpeedForUnpruned int `json:"speedForResetUnpruned"`
}

// fmsEventCounts runs the three exact FMS analyses pruned and unpruned
// and collects their event counters.
func fmsEventCounts(fms mcspeedup.Set) eventsEntry {
	var e eventsEntry
	cold := mcspeedup.AnalysisOptions{NoPrune: true}

	sp, err := mcspeedup.MinSpeedup(fms)
	if err != nil {
		log.Fatal(err)
	}
	spCold, err := mcspeedup.MinSpeedupOpts(fms, cold)
	if err != nil {
		log.Fatal(err)
	}
	e.SpeedupExamined, e.SpeedupJumps, e.SpeedupUnpruned = sp.Events, sp.Jumps, spCold.Events

	rr, err := mcspeedup.ResetTimeOpts(fms, mcspeedup.RatTwo, mcspeedup.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	rrCold, err := mcspeedup.ResetTimeOpts(fms, mcspeedup.RatTwo, cold)
	if err != nil {
		log.Fatal(err)
	}
	e.ResetExamined, e.ResetJumps, e.ResetUnpruned = rr.Events, rr.Jumps, rrCold.Events

	sr, err := mcspeedup.MinSpeedForResetOpts(fms, 50_000, mcspeedup.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	srCold, err := mcspeedup.MinSpeedForResetOpts(fms, 50_000, cold)
	if err != nil {
		log.Fatal(err)
	}
	e.SpeedForExamined, e.SpeedForJumps, e.SpeedForUnpruned = sr.Events, sr.Jumps, srCold.Events

	log.Printf("FMS events examined (pruned/unpruned): speedup %d/%d (%d jumps), reset %d/%d (%d jumps), speed-for-reset %d/%d (%d jumps)",
		e.SpeedupExamined, e.SpeedupUnpruned, e.SpeedupJumps,
		e.ResetExamined, e.ResetUnpruned, e.ResetJumps,
		e.SpeedForExamined, e.SpeedForUnpruned, e.SpeedForJumps)
	return e
}

// cpuModel returns the "model name" of the first processor entry in
// /proc/cpuinfo, or "" where that interface does not exist (non-Linux
// hosts). The field is informational; an empty value is omitted from
// the JSON rather than guessed at.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(rest, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// compareBaseline diffs fresh benchmark results against the baseline
// BENCH_core.json at path. Alloc-counter increases always count as
// regressions — allocs/op is machine-independent, so any growth is a
// real code change. ns/op slowdowns beyond tol count only when nsFail
// is set; with nsFail false they are demoted to warnings (GitHub
// ::warning annotations under Actions), which is how CI's perf-gate job
// runs on noisy shared runners. Benchmarks present on only one side are
// reported informationally and never fail the comparison.
func compareBaseline(path string, fresh []benchEntry, tol float64, nsFail bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchDoc
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s is not a BENCH_core.json document: %v", path, err)
	}
	baseline := make(map[string]benchEntry, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	warn := func(msg string) {
		if os.Getenv("GITHUB_ACTIONS") != "" {
			fmt.Printf("::warning title=mcs-bench compare::%s\n", msg)
		}
		log.Printf("compare: WARN %s", msg)
	}
	var failures []string
	for _, e := range fresh {
		b, ok := baseline[e.Name]
		if !ok {
			log.Printf("compare: %-28s new benchmark (no baseline entry)", e.Name)
			continue
		}
		delete(baseline, e.Name)
		if e.AllocsPerOp > b.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d",
				e.Name, b.AllocsPerOp, e.AllocsPerOp))
			continue
		}
		var drift float64
		if b.NsPerOp > 0 {
			drift = (e.NsPerOp/b.NsPerOp - 1) * 100
		}
		if b.NsPerOp > 0 && e.NsPerOp > b.NsPerOp*(1+tol) {
			msg := fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, tolerance %.0f%%)",
				e.Name, b.NsPerOp, e.NsPerOp, drift, tol*100)
			if nsFail {
				failures = append(failures, msg)
			} else {
				warn(msg)
			}
			continue
		}
		log.Printf("compare: %-28s ok (ns/op %+.1f%%, allocs/op %d -> %d)",
			e.Name, drift, b.AllocsPerOp, e.AllocsPerOp)
	}
	for name := range baseline {
		log.Printf("compare: %-28s only in baseline (dropped?)", name)
	}
	if len(failures) > 0 {
		return fmt.Errorf("regressions vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	return nil
}

// gitRev returns the short commit hash of the working tree, or "unknown"
// outside a git checkout (e.g. an extracted release tarball).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendTrajectory appends entry to the JSON array at path, creating the
// file on first use. The history is handled as raw messages so entries
// written by other tools (mcs-load's latency rows share this file) pass
// through byte-preserved instead of being re-shaped through this tool's
// entry struct.
func appendTrajectory(path string, entry any) error {
	var hist []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("%s is not a trajectory array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	hist = append(hist, raw)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureVet times a full mcs-vet module sweep over root, cold into a
// fresh fact cache and warm replaying from it. Outside a module
// checkout (no go.mod at root) the measurement is skipped.
func measureVet(root string) *vetEntry {
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		log.Printf("vet wall time: skipped (%v)", err)
		return nil
	}
	cacheDir, err := os.MkdirTemp("", "mcsvet-bench-")
	if err != nil {
		log.Printf("vet wall time: skipped (%v)", err)
		return nil
	}
	defer os.RemoveAll(cacheDir)
	opts := lint.ModuleOptions{CacheDir: cacheDir}

	start := time.Now()
	cold, err := lint.RunModule(root, suite.Analyzers, opts)
	if err != nil {
		log.Printf("vet wall time: skipped (%v)", err)
		return nil
	}
	coldSec := time.Since(start).Seconds()

	start = time.Now()
	warm, err := lint.RunModule(root, suite.Analyzers, opts)
	if err != nil {
		log.Printf("vet wall time: skipped (%v)", err)
		return nil
	}
	warmSec := time.Since(start).Seconds()

	e := &vetEntry{
		Packages:      len(cold.Packages),
		ColdSeconds:   coldSec,
		WarmSeconds:   warmSec,
		WarmCacheHits: warm.CacheHits,
	}
	log.Printf("vet wall time: %d packages, cold %.3fs, warm %.3fs (%d cache hits)",
		e.Packages, e.ColdSeconds, e.WarmSeconds, e.WarmCacheHits)
	return e
}

// measure runs fn under testing.Benchmark with allocation reporting.
func measure(name string, fn func()) benchEntry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	e := benchEntry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	log.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations)
	return e
}

// fmsPrepared is the §VI.A flight-management set degraded by y = 2 and
// minimally prepared — the same configuration the repository's root
// benchmarks use.
func fmsPrepared() mcspeedup.Set {
	set, err := mcspeedup.FMSTasks(mcspeedup.RatTwo)
	if err != nil {
		log.Fatal(err)
	}
	set, err = set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		log.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		log.Fatal(err)
	}
	return prepared
}

// deltaEdits picks an FMS HI task whose C(HI) can be lowered by one
// without violating C(LO) <= C(HI) and returns the two alternating
// single-parameter edits the session-delta benchmark flips between.
func deltaEdits(set mcspeedup.Set) (up, down mcspeedup.Edit) {
	for _, tk := range set {
		if tk.Crit == mcspeedup.HI && tk.WCET[mcspeedup.HI] > tk.WCET[mcspeedup.LO] {
			c := tk.WCET[mcspeedup.HI]
			return mcspeedup.SetParam(tk.Name, mcspeedup.ParamCHI, c),
				mcspeedup.SetParam(tk.Name, mcspeedup.ParamCHI, c-1)
		}
	}
	log.Fatal("no FMS HI task with C(HI) > C(LO)")
	return
}

// genPrepared mirrors the root benchmarks' synthetic corpus: a
// generator set at the given seed and utilization, minimally prepared.
func genPrepared(seed int64, uBound float64) mcspeedup.Set {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(seed))
	for {
		set := g.MustSet(rnd, uBound)
		if _, prepared, err := mcspeedup.MinimalX(set); err == nil {
			return prepared
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-bench: ")
	var (
		out        = flag.String("out", "BENCH_core.json", "output path (- = stdout)")
		trajectory = flag.String("trajectory", "", "append a dated entry to this JSON-array history file")
		grid       = flag.Int("grid", 9, "Fig.-5 sweep grid resolution")
		workers    = flag.Int("workers", 0, "Fig.-5 sweep workers (0 = all cores)")
		vetRoot    = flag.String("vetroot", ".", "module root for the vet wall-time sweep ('' = skip)")
		compare    = flag.String("compare", "", "baseline BENCH_core.json to diff against; exit nonzero on regression")
		compareTol = flag.Float64("compare-tol", 0.15, "ns/op slowdown tolerated by -compare")
		compareNS  = flag.Bool("compare-ns-fail", true, "fail -compare on ns/op regressions (false: warn only; allocs/op increases always fail)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	)
	flag.Parse()

	fms := fmsPrepared()
	synth := genPrepared(77, 0.7)
	scratch := new(mcspeedup.AnalysisScratch)
	withScratch := mcspeedup.AnalysisOptions{Scratch: scratch}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		// The profile covers the benchmark loops and the Fig.-5 sweep —
		// the analysis hot paths — not the vet sweep or file writes;
		// stopCPUProfile below is called right after the sweep.
		defer f.Close()
	}

	doc := benchDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		CPUModel:    cpuModel(),
	}
	doc.Benchmarks = []benchEntry{
		measure("MinSpeedupFMS", func() {
			if _, err := mcspeedup.MinSpeedup(fms); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinSpeedupFMSScratch", func() {
			if _, err := mcspeedup.MinSpeedupOpts(fms, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("ResetTimeFMS", func() {
			if _, err := mcspeedup.ResetTimeOpts(fms, mcspeedup.RatTwo, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinSpeedForResetFMS", func() {
			if _, err := mcspeedup.MinSpeedForResetOpts(fms, 50_000, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinimalY", func() {
			if _, _, err := mcspeedup.MinimalY(synth, mcspeedup.RatTwo); err != nil {
				log.Fatal(err)
			}
		}),
		measure("TuneDeadlines", func() {
			if _, err := mcspeedup.TuneDeadlines(synth, mcspeedup.RatZero); err != nil {
				log.Fatal(err)
			}
		}),
		measure("FeasibleXWindowFMS", func() {
			if _, _, err := mcspeedup.FeasibleXWindow(fms, mcspeedup.RatTwo); err != nil {
				log.Fatal(err)
			}
		}),
		measure("AnalyzeColdFMS", func() {
			if _, err := mcspeedup.AnalyzeSet(fms, mcspeedup.RatTwo); err != nil {
				log.Fatal(err)
			}
		}),
	}

	// SimRunFMS: one full simulator run of the FMS set over a 20-period
	// synchronous workload with every-fifth-job overruns, through the
	// compiled zero-allocation entry point (compile and workload built
	// once, Result and SimScratch reused) — allocs/op must read 0.
	{
		horizon := 20 * fms.MaxPeriod()
		wl := mcspeedup.SynchronousPeriodic(fms, horizon, func(_, seq int) bool {
			return seq%5 == 0
		})
		c, err := mcspeedup.CompileSim(fms, wl)
		if err != nil {
			log.Fatal(err)
		}
		cfg := mcspeedup.SimConfig{Speedup: mcspeedup.RatTwo}
		var res mcspeedup.SimResult
		var sc mcspeedup.SimScratch
		doc.Benchmarks = append(doc.Benchmarks, measure("SimRunFMS", func() {
			if err := c.RunInto(&res, &sc, cfg); err != nil {
				log.Fatal(err)
			}
		}))
	}

	// FleetThroughput: sampled-ACET Monte-Carlo runs per second through
	// the fleet engine (single worker, so the number is per-core and the
	// measurement composes with -workers linearly).
	{
		e := measure("FleetThroughput", func() {
			if _, err := mcspeedup.RunFleet(mcspeedup.FleetParams{
				Set: fms, Runs: 32, Seed: 1, Speedup: mcspeedup.RatTwo,
				Horizon: 4 * fms.MaxPeriod(), Workers: 1,
			}); err != nil {
				log.Fatal(err)
			}
		})
		log.Printf("fleet throughput: %.0f runs/sec/core", 32/(e.NsPerOp/1e9))
		doc.Benchmarks = append(doc.Benchmarks, e)
	}

	// SessionDeltaEditFMS: one single-parameter C(HI) edit plus the
	// delta re-analysis it triggers, against AnalyzeColdFMS above — the
	// delta-vs-cold ratio docs/PERF.md quotes. The session persists
	// across iterations (that is the point of the incremental path); the
	// edit alternates between two valid values so every iteration really
	// changes the set.
	{
		up, down := deltaEdits(fms)
		sess, err := mcspeedup.NewAnalysisSession(fms, mcspeedup.RatTwo)
		if err != nil {
			log.Fatal(err)
		}
		if _, _, err := sess.Report(); err != nil { // absorb the cold analysis
			log.Fatal(err)
		}
		flip := false
		doc.Benchmarks = append(doc.Benchmarks, measure("SessionDeltaEditFMS", func() {
			e := down
			if flip {
				e = up
			}
			flip = !flip
			if err := sess.Apply(e); err != nil {
				log.Fatal(err)
			}
			if _, _, err := sess.Report(); err != nil {
				log.Fatal(err)
			}
		}))
	}

	start := time.Now()
	if _, err := mcspeedup.ExperimentFig5(*grid, *workers); err != nil {
		log.Fatal(err)
	}
	doc.Fig5 = fig5Entry{Grid: *grid, Workers: *workers, Seconds: time.Since(start).Seconds()}
	log.Printf("fig5 sweep (grid %d, workers %d): %.3fs", *grid, *workers, doc.Fig5.Seconds)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		log.Printf("wrote CPU profile to %s", *cpuprofile)
	}

	if *vetRoot != "" {
		doc.VetWallTime = measureVet(*vetRoot)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		fmt.Print(string(data))
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}

	if *trajectory != "" {
		entry := trajectoryEntry{
			Date:        doc.GeneratedAt,
			GitRev:      gitRev(),
			GoVersion:   doc.GoVersion,
			NumCPU:      doc.NumCPU,
			GoMaxProcs:  doc.GoMaxProcs,
			CPUModel:    doc.CPUModel,
			Benchmarks:  doc.Benchmarks,
			FMSEvents:   fmsEventCounts(fms),
			VetWallTime: doc.VetWallTime,
		}
		if err := appendTrajectory(*trajectory, entry); err != nil {
			log.Fatal(err)
		}
		log.Printf("appended %s @ %s to %s", entry.Date, entry.GitRev, *trajectory)
	}

	if *compare != "" {
		if err := compareBaseline(*compare, doc.Benchmarks, *compareTol, *compareNS); err != nil {
			log.Fatal(err)
		}
		log.Printf("compare: no regressions vs %s", *compare)
	}
}
