// Command mcs-bench measures the analysis engine's steady-state
// performance and writes the machine-readable trajectory BENCH_core.json
// tracked at the repository root (see docs/PERF.md). It benchmarks the
// hot analysis paths with testing.Benchmark — so ns/op, B/op, and
// allocs/op carry the exact semantics of `go test -bench` — plus one
// timed run of the Fig.-5 design-space sweep as an end-to-end wall-clock
// probe.
//
// Usage:
//
//	mcs-bench [-out BENCH_core.json] [-grid 9] [-workers 0]
//
// Regenerate the checked-in file with scripts/bench_core.sh. Absolute
// numbers are machine-dependent; allocs/op is the portable signal the
// regression tests pin (see internal/core's zero-allocation tests).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"mcspeedup"
)

// benchDoc is the BENCH_core.json layout.
type benchDoc struct {
	GeneratedAt string       `json:"generatedAt"`
	GoVersion   string       `json:"goVersion"`
	NumCPU      int          `json:"numCPU"`
	Benchmarks  []benchEntry `json:"benchmarks"`
	Fig5        fig5Entry    `json:"fig5Sweep"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

type fig5Entry struct {
	Grid    int     `json:"grid"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
}

// measure runs fn under testing.Benchmark with allocation reporting.
func measure(name string, fn func()) benchEntry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	e := benchEntry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	log.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations)
	return e
}

// fmsPrepared is the §VI.A flight-management set degraded by y = 2 and
// minimally prepared — the same configuration the repository's root
// benchmarks use.
func fmsPrepared() mcspeedup.Set {
	set, err := mcspeedup.FMSTasks(mcspeedup.RatTwo)
	if err != nil {
		log.Fatal(err)
	}
	set, err = set.DegradeLO(mcspeedup.RatTwo)
	if err != nil {
		log.Fatal(err)
	}
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		log.Fatal(err)
	}
	return prepared
}

// genPrepared mirrors the root benchmarks' synthetic corpus: a
// generator set at the given seed and utilization, minimally prepared.
func genPrepared(seed int64, uBound float64) mcspeedup.Set {
	g := mcspeedup.DefaultGenerator()
	rnd := rand.New(rand.NewSource(seed))
	for {
		set := g.MustSet(rnd, uBound)
		if _, prepared, err := mcspeedup.MinimalX(set); err == nil {
			return prepared
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-bench: ")
	var (
		out     = flag.String("out", "BENCH_core.json", "output path (- = stdout)")
		grid    = flag.Int("grid", 9, "Fig.-5 sweep grid resolution")
		workers = flag.Int("workers", 0, "Fig.-5 sweep workers (0 = all cores)")
	)
	flag.Parse()

	fms := fmsPrepared()
	synth := genPrepared(77, 0.7)
	scratch := new(mcspeedup.AnalysisScratch)
	withScratch := mcspeedup.AnalysisOptions{Scratch: scratch}

	doc := benchDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
	}
	doc.Benchmarks = []benchEntry{
		measure("MinSpeedupFMS", func() {
			if _, err := mcspeedup.MinSpeedup(fms); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinSpeedupFMSScratch", func() {
			if _, err := mcspeedup.MinSpeedupOpts(fms, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("ResetTimeFMS", func() {
			if _, err := mcspeedup.ResetTimeOpts(fms, mcspeedup.RatTwo, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinSpeedForResetFMS", func() {
			if _, err := mcspeedup.MinSpeedForResetOpts(fms, 50_000, withScratch); err != nil {
				log.Fatal(err)
			}
		}),
		measure("MinimalY", func() {
			if _, _, err := mcspeedup.MinimalY(synth, mcspeedup.RatTwo); err != nil {
				log.Fatal(err)
			}
		}),
		measure("TuneDeadlines", func() {
			if _, err := mcspeedup.TuneDeadlines(synth, mcspeedup.RatZero); err != nil {
				log.Fatal(err)
			}
		}),
	}

	start := time.Now()
	if _, err := mcspeedup.ExperimentFig5(*grid, *workers); err != nil {
		log.Fatal(err)
	}
	doc.Fig5 = fig5Entry{Grid: *grid, Workers: *workers, Seconds: time.Since(start).Seconds()}
	log.Printf("fig5 sweep (grid %d, workers %d): %.3fs", *grid, *workers, doc.Fig5.Seconds)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		fmt.Print(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
