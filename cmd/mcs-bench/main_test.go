package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals a benchDoc with the given entries into a temp
// BENCH_core.json and returns its path.
func writeBaseline(t *testing.T, entries []benchEntry) string {
	t.Helper()
	doc := benchDoc{GoVersion: "go-test", Benchmarks: entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := []benchEntry{
		{Name: "MinSpeedupFMS", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "MinimalY", NsPerOp: 5000, AllocsPerOp: 7},
		{Name: "Dropped", NsPerOp: 10, AllocsPerOp: 0},
	}
	path := writeBaseline(t, base)

	cases := []struct {
		name    string
		fresh   []benchEntry
		nsFail  bool
		wantErr string // substring of the error, "" = no error
	}{
		{
			name: "within tolerance",
			fresh: []benchEntry{
				{Name: "MinSpeedupFMS", NsPerOp: 1100, AllocsPerOp: 0},
				{Name: "MinimalY", NsPerOp: 4000, AllocsPerOp: 7},
			},
			nsFail: true,
		},
		{
			name: "ns regression fails when gated",
			fresh: []benchEntry{
				{Name: "MinSpeedupFMS", NsPerOp: 1200, AllocsPerOp: 0},
			},
			nsFail:  true,
			wantErr: "MinSpeedupFMS: ns/op 1000 -> 1200",
		},
		{
			name: "ns regression warns when not gated",
			fresh: []benchEntry{
				{Name: "MinSpeedupFMS", NsPerOp: 1200, AllocsPerOp: 0},
			},
			nsFail: false,
		},
		{
			name: "alloc increase fails regardless of gate",
			fresh: []benchEntry{
				{Name: "MinimalY", NsPerOp: 100, AllocsPerOp: 8},
			},
			nsFail:  false,
			wantErr: "MinimalY: allocs/op 7 -> 8",
		},
		{
			name: "alloc decrease and new benchmark pass",
			fresh: []benchEntry{
				{Name: "MinimalY", NsPerOp: 5000, AllocsPerOp: 3},
				{Name: "BrandNew", NsPerOp: 42, AllocsPerOp: 0},
			},
			nsFail: true,
		},
		{
			name: "boundary: exactly at tolerance passes",
			fresh: []benchEntry{
				{Name: "MinSpeedupFMS", NsPerOp: 1150, AllocsPerOp: 0},
			},
			nsFail: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compareBaseline(path, tc.fresh, 0.15, tc.nsFail)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want regression containing %q, got none", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompareBaselineBadInputs(t *testing.T) {
	if err := compareBaseline(filepath.Join(t.TempDir(), "missing.json"), nil, 0.15, true); err == nil {
		t.Error("missing baseline file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("[1, 2]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBaseline(bad, nil, 0.15, true); err == nil {
		t.Error("non-document baseline: want error")
	}
}
