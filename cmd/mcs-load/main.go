// Command mcs-load drives an mcs-serve replica set with an open-loop,
// Zipf-skewed analysis workload and reports latency quantiles and the
// highest offered rate that met the latency SLO.
//
// Usage:
//
//	mcs-load -addrs 127.0.0.1:7101,127.0.0.1:7102 [flags]
//
//	-addrs string      comma-separated replica addresses; requests
//	                   round-robin across them (required)
//	-endpoint string   POST endpoint to load (default /v1/analyze)
//	-rps float         peak offered requests/second (default 200)
//	-duration dur      total test duration across all stages (default 10s)
//	-steps int         offered-rate ladder: steps stages at rps·i/steps,
//	                   each duration/steps long (default 4; 1 = a single
//	                   stage at the target rate)
//	-corpus int        distinct task sets in the corpus (default 64)
//	-util float        corpus task-set utilization bound (default 0.6)
//	-zipf float        Zipf popularity exponent (default 1.1)
//	-seed int          corpus + schedule seed (default 1)
//	-slo dur           latency SLO (default 50ms)
//	-slo-quantile f    quantile the SLO applies to (default 0.99)
//	-timeout dur       per-request timeout (default 5s)
//	-warmup int        cache-priming requests before measuring: each
//	                   corpus entry is POSTed once per replica when > 0
//	                   (default 1; 0 = cold start)
//	-trajectory path   append a dated entry to this JSON-array history
//	                   (shared with mcs-bench; see docs/PERF.md)
//	-out path          write the full report JSON here (- = stdout)
//
// The load is open-loop: request k of a stage launches at exactly
// start + k/rate regardless of how slowly earlier requests return, so a
// replica that falls behind accumulates queueing latency in the
// measurement instead of silently throttling the client (closed-loop
// coordinated omission). The arrival schedule and the corpus draw
// sequence are pure functions of -seed, so two runs against equal
// deployments offer byte-identical request streams.
//
// Latencies are recorded in an HDR-style log-bucketed histogram
// (internal/stats) spanning 10 µs – 60 s at 100 buckets/decade, so the
// reported p50/p99/p999 carry ≤ 2.4 % relative error. RPS-at-SLO is the
// largest stage rate whose -slo-quantile latency met -slo with zero
// request errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"mcspeedup/internal/gen"
	"mcspeedup/internal/stats"
)

// histMin/histMax/histPerDecade are the latency histogram bounds: 10 µs
// (well under a loopback round-trip) to 60 s (beyond any sane timeout).
const (
	histMin       = 10e-6
	histMax       = 60.0
	histPerDecade = 100
)

// stageResult is one rung of the offered-rate ladder.
type stageResult struct {
	OfferedRPS  float64 `json:"offeredRPS"`
	AchievedRPS float64 `json:"achievedRPS"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	P999Ms      float64 `json:"p999Ms"`
	MaxMs       float64 `json:"maxMs"`
	MetSLO      bool    `json:"metSLO"`
}

// report is the mcs-load output document; the trajectory entry embeds
// it under stable field names next to mcs-bench's ns/op entries.
type report struct {
	Kind        string        `json:"kind"` // "load" (mcs-bench entries have no kind)
	Date        string        `json:"date"`
	GitRev      string        `json:"gitRev"`
	GoVersion   string        `json:"goVersion"`
	NumCPU      int           `json:"numCPU"`
	Addrs       []string      `json:"addrs"`
	Endpoint    string        `json:"endpoint"`
	Corpus      int           `json:"corpus"`
	Zipf        float64       `json:"zipf"`
	Seed        int64         `json:"seed"`
	SLOMs       float64       `json:"sloMs"`
	SLOQuantile float64       `json:"sloQuantile"`
	Stages      []stageResult `json:"stages"`
	// Aggregates over every measured stage.
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
	P999Ms   float64 `json:"p999Ms"`
	MaxMs    float64 `json:"maxMs"`
	// RPSAtSLO is the largest offered stage rate that met the SLO
	// (0 when even the lowest stage missed it).
	RPSAtSLO float64 `json:"rpsAtSLO"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-load: ")
	var (
		addrsFlag   = flag.String("addrs", "", "comma-separated replica addresses (required)")
		endpoint    = flag.String("endpoint", "/v1/analyze", "POST endpoint to load")
		rps         = flag.Float64("rps", 200, "peak offered requests/second")
		duration    = flag.Duration("duration", 10*time.Second, "total test duration across all stages")
		steps       = flag.Int("steps", 4, "offered-rate ladder stages (1 = single stage at -rps)")
		corpusN     = flag.Int("corpus", 64, "distinct task sets in the corpus")
		util        = flag.Float64("util", 0.6, "corpus task-set utilization bound")
		zipfS       = flag.Float64("zipf", 1.1, "Zipf popularity exponent")
		seed        = flag.Int64("seed", 1, "corpus + schedule seed")
		slo         = flag.Duration("slo", 50*time.Millisecond, "latency SLO")
		sloQuantile = flag.Float64("slo-quantile", 0.99, "quantile the SLO applies to")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		warmup      = flag.Int("warmup", 1, "cache-priming passes over the corpus per replica (0 = cold)")
		trajectory  = flag.String("trajectory", "", "append a dated entry to this JSON-array history file")
		out         = flag.String("out", "-", "write the report JSON here (- = stdout)")
	)
	flag.Parse()

	addrs := splitAddrs(*addrsFlag)
	if len(addrs) == 0 {
		log.Fatal("-addrs is required (comma-separated host:port list)")
	}
	if *rps <= 0 || *steps <= 0 || *duration <= 0 {
		log.Fatal("-rps, -steps, and -duration must be positive")
	}
	if *sloQuantile <= 0 || *sloQuantile > 1 {
		log.Fatal("-slo-quantile must be in (0, 1]")
	}

	bodies := buildCorpus(*seed, *corpusN, *util)
	sampler := gen.ZipfCorpus(gen.Substream(*seed, 1, 0), *corpusN, *zipfS)
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4 * runtime.NumCPU(),
			MaxIdleConnsPerHost: 4 * runtime.NumCPU(),
		},
	}

	if *warmup > 0 {
		primeCaches(client, addrs, *endpoint, bodies, *warmup)
	}

	rep := report{
		Kind:        "load",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GitRev:      gitRev(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Addrs:       addrs,
		Endpoint:    *endpoint,
		Corpus:      *corpusN,
		Zipf:        *zipfS,
		Seed:        *seed,
		SLOMs:       float64(*slo) / float64(time.Millisecond),
		SLOQuantile: *sloQuantile,
	}

	total := stats.NewHistogram(histMin, histMax, histPerDecade)
	stageDur := *duration / time.Duration(*steps)
	for i := 1; i <= *steps; i++ {
		rate := *rps * float64(i) / float64(*steps)
		st, hist := runStage(client, addrs, *endpoint, bodies, sampler, rate, stageDur)
		st.MetSLO = st.Errors == 0 && hist.Count() > 0 && hist.HistQuantile(*sloQuantile) <= slo.Seconds()
		if st.MetSLO && rate > rep.RPSAtSLO {
			rep.RPSAtSLO = rate
		}
		total.Merge(hist)
		rep.Stages = append(rep.Stages, st)
		rep.Requests += st.Requests
		rep.Errors += st.Errors
		log.Printf("stage %d/%d: offered %.0f rps, achieved %.0f, p50 %.2fms p99 %.2fms p999 %.2fms, errors %d, SLO %v",
			i, *steps, st.OfferedRPS, st.AchievedRPS, st.P50Ms, st.P99Ms, st.P999Ms, st.Errors, st.MetSLO)
	}
	if total.Count() > 0 {
		rep.P50Ms = 1000 * total.HistQuantile(0.50)
		rep.P99Ms = 1000 * total.HistQuantile(0.99)
		rep.P999Ms = 1000 * total.HistQuantile(0.999)
		rep.MaxMs = 1000 * total.Max()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if *out == "-" {
		fmt.Println(string(data))
	} else {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if *trajectory != "" {
		if err := appendTrajectory(*trajectory, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("appended load entry @ %s to %s", rep.GitRev, *trajectory)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// buildCorpus generates n task-set request bodies (bare JSON arrays, the
// /v1/analyze body format). Draw i comes from its own substream, so the
// corpus is a pure function of (seed, n, util) — the same corpus every
// replica of a differential run sees.
func buildCorpus(seed int64, n int, util float64) [][]byte {
	params := gen.Defaults()
	bodies := make([][]byte, n)
	for i := range bodies {
		set := params.MustSet(gen.SubRand(seed, 0, i), util)
		data, err := json.Marshal(set)
		if err != nil {
			log.Fatalf("marshaling corpus set %d: %v", i, err)
		}
		bodies[i] = data
	}
	return bodies
}

// primeCaches POSTs every corpus entry to every replica `passes` times,
// so the measured stages exercise the steady state (cache hits plus the
// Zipf tail) rather than the one-time cold fill.
func primeCaches(client *http.Client, addrs []string, endpoint string, bodies [][]byte, passes int) {
	for p := 0; p < passes; p++ {
		for _, addr := range addrs {
			for _, body := range bodies {
				resp, err := client.Post("http://"+addr+endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatalf("warmup request to %s failed: %v", addr, err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
}

// runStage offers `rate` rps for `dur` with a deterministic open-loop
// schedule: request k launches at start + k/rate. Latencies land in a
// per-stage histogram; transport errors and non-200 statuses count as
// errors and are excluded from the latency distribution.
func runStage(client *http.Client, addrs []string, endpoint string, bodies [][]byte, sampler *gen.Corpus, rate float64, dur time.Duration) (stageResult, *stats.Histogram) {
	n := int(math.Floor(rate * dur.Seconds()))
	if n < 1 {
		n = 1
	}
	hist := stats.NewHistogram(histMin, histMax, histPerDecade)
	var mu sync.Mutex // guards hist
	var errs uint64
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for k := 0; k < n; k++ {
		// The draw happens on the schedule goroutine, in schedule order,
		// so the request stream is deterministic even though requests
		// complete out of order.
		body := bodies[sampler.Next()%len(bodies)]
		addr := addrs[k%len(addrs)]
		time.Sleep(time.Until(start.Add(time.Duration(k) * interval)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post("http://"+addr+endpoint, "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			elapsed := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if err != nil || resp.StatusCode != http.StatusOK {
				errs++
				return
			}
			hist.Observe(elapsed)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	st := stageResult{
		OfferedRPS:  rate,
		AchievedRPS: float64(n) / elapsed,
		Requests:    uint64(n),
		Errors:      errs,
	}
	if hist.Count() > 0 {
		st.P50Ms = 1000 * hist.HistQuantile(0.50)
		st.P99Ms = 1000 * hist.HistQuantile(0.99)
		st.P999Ms = 1000 * hist.HistQuantile(0.999)
		st.MaxMs = 1000 * hist.Max()
	}
	return st, hist
}

// appendTrajectory appends entry to the JSON array at path, creating the
// file on first use. Existing entries (mcs-bench's ns/op rows) pass
// through as raw messages, byte-preserved.
func appendTrajectory(path string, entry any) error {
	var hist []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("%s is not a trajectory array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	hist = append(hist, raw)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// gitRev mirrors mcs-bench's revision stamp.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
