// Command mcs-experiments regenerates the tables and figures of the
// paper's evaluation section and prints them as fixed-width text (see
// EXPERIMENTS.md for the recorded outputs).
//
// Usage:
//
//	mcs-experiments [flags]
//
//	-run string   comma-separated subset of
//	              table1,fig1,fig2,fig3,fig4,fig5,fig6,fig7,ablation,service
//	              (default "all")
//	-json         emit results as JSON instead of rendered text
//	-sets int     task sets per data point for fig6/fig7 (default 100/20)
//	-grid int     grid resolution for fig5/fig7 (default 9)
//	-seed int     RNG seed (default 2015)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"

	"mcspeedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-experiments: ")
	var (
		run    = flag.String("run", "all", "experiments to run (comma-separated)")
		sets   = flag.Int("sets", 0, "task sets per data point (fig6/fig7/ablation)")
		grid   = flag.Int("grid", 9, "grid resolution (fig5/fig7)")
		seed   = flag.Int64("seed", 2015, "random seed")
		asJSON = flag.Bool("json", false, "emit results as JSON")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	type renderer interface{ Render() string }
	emit := func(name string, r renderer, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if *asJSON {
			data, err := json.MarshalIndent(map[string]any{"experiment": name, "result": r}, "", "  ")
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println(string(data))
			return
		}
		fmt.Printf("==== %s ====\n%s\n", name, r.Render())
	}

	if selected("table1") {
		r, err := mcspeedup.ExperimentTable1()
		emit("Table I / Examples 1-2", r, err)
	}
	if selected("fig1") {
		r, err := mcspeedup.ExperimentFig1(30)
		emit("Figure 1", r, err)
	}
	if selected("fig2") {
		emit("Figure 2", mcspeedup.ExperimentFig2(), nil)
	}
	if selected("fig3") {
		r, err := mcspeedup.ExperimentFig3(30, 40)
		emit("Figure 3", r, err)
	}
	if selected("fig4") {
		r, err := mcspeedup.ExperimentFig4(17, 25)
		emit("Figure 4", r, err)
	}
	if selected("fig5") {
		r, err := mcspeedup.ExperimentFig5(*grid)
		emit("Figure 5", r, err)
	}
	if selected("fig6") {
		cfg := mcspeedup.Fig6Config{Seed: *seed}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		r, err := mcspeedup.ExperimentFig6(cfg)
		emit("Figure 6", r, err)
	}
	if selected("fig7") {
		cfg := mcspeedup.Fig7Config{Seed: *seed}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		if *grid > 0 {
			for i := 0; i < *grid; i++ {
				cfg.Grid = append(cfg.Grid, 0.1+0.85*float64(i)/float64(*grid-1))
			}
		}
		r, err := mcspeedup.ExperimentFig7(cfg)
		emit("Figure 7", r, err)
	}
	if selected("service") {
		cfg := mcspeedup.ServiceQualityConfig{Seed: *seed}
		if *sets > 0 {
			cfg.Sets = *sets
		}
		r, err := mcspeedup.ExperimentServiceQuality(cfg)
		emit("LO-service quality", r, err)
	}
	if selected("ablation") {
		cfg := mcspeedup.AblationConfig{Seed: *seed}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		r, err := mcspeedup.ExperimentAblation(cfg)
		emit("Policy ablation", r, err)
	}
}
