// Command mcs-experiments regenerates the tables and figures of the
// paper's evaluation section and prints them as fixed-width text (see
// EXPERIMENTS.md for the recorded outputs).
//
// Usage:
//
//	mcs-experiments [flags]
//
//	-run string        comma-separated subset of
//	                   table1,fig1,fig2,fig3,fig4,fig5,fig6,fig7,ablation,service
//	                   (default "all")
//	-json              emit results as JSON instead of rendered text
//	-sets int          task sets per data point for fig6/fig7 (default 100/20)
//	-grid int          grid resolution for fig5/fig7 (default 9)
//	-seed int          RNG seed (default 2015)
//	-workers int       parallel sweep workers (0 = all cores); rendered
//	                   output is byte-identical for every worker count
//	-bench-json path   also write per-experiment wall-clock and corpus
//	                   stats as JSON to path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"mcspeedup"
)

// benchEntry is one per-experiment record of the -bench-json report.
type benchEntry struct {
	Experiment string  `json:"experiment"`
	Seconds    float64 `json:"seconds"`
	// Corpus is the number of analyzed task sets (0 for the analytic
	// figures that have no random corpus).
	Corpus int `json:"corpus,omitempty"`
}

// benchReport is the -bench-json file layout: enough context to compare
// wall-clock trajectories across machines and worker counts.
type benchReport struct {
	GeneratedAt string       `json:"generatedAt"`
	GoVersion   string       `json:"goVersion"`
	NumCPU      int          `json:"numCPU"`
	Workers     int          `json:"workers"`
	Seed        int64        `json:"seed"`
	Experiments []benchEntry `json:"experiments"`
	TotalSecs   float64      `json:"totalSeconds"`
}

// corpusSize reports the number of random task sets an experiment
// analyzed, when it has a corpus at all.
func corpusSize(r any) int {
	switch v := r.(type) {
	case mcspeedup.Fig6Result:
		return v.Config.SetsPerPoint*len(v.UBounds) + v.Infeasible
	case mcspeedup.Fig7Result:
		return v.Config.SetsPerPoint * len(v.Grid) * len(v.Grid)
	case mcspeedup.AblationResult:
		return v.Config.SetsPerPoint * len(v.UBounds)
	case mcspeedup.ServiceQualityResult:
		return v.CorpusSize
	default:
		return 0
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-experiments: ")
	var (
		run       = flag.String("run", "all", "experiments to run (comma-separated)")
		sets      = flag.Int("sets", 0, "task sets per data point (fig6/fig7/ablation/service)")
		grid      = flag.Int("grid", 9, "grid resolution (fig5/fig7)")
		seed      = flag.Int64("seed", 2015, "random seed")
		asJSON    = flag.Bool("json", false, "emit results as JSON")
		workers   = flag.Int("workers", 0, "parallel sweep workers (0 = all cores)")
		benchPath = flag.String("bench-json", "", "write per-experiment wall-clock stats as JSON to this path")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //lint:ignore determcheck bench-report metadata; experiment results do not depend on it
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Workers:     *workers,
		Seed:        *seed,
	}

	type renderer interface{ Render() string }
	runExperiment := func(key, title string, driver func() (renderer, error)) {
		if !selected(key) {
			return
		}
		start := time.Now() //lint:ignore determcheck wall-clock bench timing around the driver; the rendered results do not depend on it
		r, err := driver()
		elapsed := time.Since(start) //lint:ignore determcheck wall-clock bench timing around the driver; the rendered results do not depend on it
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		report.Experiments = append(report.Experiments, benchEntry{
			Experiment: key,
			Seconds:    elapsed.Seconds(),
			Corpus:     corpusSize(r),
		})
		report.TotalSecs += elapsed.Seconds()
		if *asJSON {
			data, err := json.MarshalIndent(map[string]any{"experiment": title, "result": r}, "", "  ")
			if err != nil {
				log.Fatalf("%s: %v", title, err)
			}
			fmt.Println(string(data))
			return
		}
		fmt.Printf("==== %s ====\n%s\n", title, r.Render())
	}

	runExperiment("table1", "Table I / Examples 1-2", func() (renderer, error) {
		r, err := mcspeedup.ExperimentTable1()
		return r, err
	})
	runExperiment("fig1", "Figure 1", func() (renderer, error) {
		r, err := mcspeedup.ExperimentFig1(30)
		return r, err
	})
	runExperiment("fig2", "Figure 2", func() (renderer, error) {
		return mcspeedup.ExperimentFig2(), nil
	})
	runExperiment("fig3", "Figure 3", func() (renderer, error) {
		r, err := mcspeedup.ExperimentFig3(30, 40, *workers)
		return r, err
	})
	runExperiment("fig4", "Figure 4", func() (renderer, error) {
		r, err := mcspeedup.ExperimentFig4(17, 25, *workers)
		return r, err
	})
	runExperiment("fig5", "Figure 5", func() (renderer, error) {
		r, err := mcspeedup.ExperimentFig5(*grid, *workers)
		return r, err
	})
	runExperiment("fig6", "Figure 6", func() (renderer, error) {
		cfg := mcspeedup.Fig6Config{Seed: *seed, Workers: *workers}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		r, err := mcspeedup.ExperimentFig6(cfg)
		return r, err
	})
	runExperiment("fig7", "Figure 7", func() (renderer, error) {
		cfg := mcspeedup.Fig7Config{Seed: *seed, Workers: *workers}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		if *grid > 0 {
			for i := 0; i < *grid; i++ {
				cfg.Grid = append(cfg.Grid, 0.1+0.85*float64(i)/float64(*grid-1))
			}
		}
		r, err := mcspeedup.ExperimentFig7(cfg)
		return r, err
	})
	runExperiment("service", "LO-service quality", func() (renderer, error) {
		cfg := mcspeedup.ServiceQualityConfig{Seed: *seed, Workers: *workers}
		if *sets > 0 {
			cfg.Sets = *sets
		}
		r, err := mcspeedup.ExperimentServiceQuality(cfg)
		return r, err
	})
	runExperiment("ablation", "Policy ablation", func() (renderer, error) {
		cfg := mcspeedup.AblationConfig{Seed: *seed, Workers: *workers}
		if *sets > 0 {
			cfg.SetsPerPoint = *sets
		}
		r, err := mcspeedup.ExperimentAblation(cfg)
		return r, err
	})

	if *benchPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("bench-json: %v", err)
		}
		if err := os.WriteFile(*benchPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("bench-json: %v", err)
		}
	}
}
