// Command mcs-vet is the repository's custom static-analysis suite: a
// vet tool (in the sense of `go vet -vettool`) enforcing the
// correctness invariants the analysis engine's guarantees rest on,
// with modular facts carrying interprocedural results (arena borrows,
// detached contexts, lock-order edges) across package boundaries.
//
// Two ways to drive it:
//
//	# under cmd/go, per compilation unit, facts in vetx files
//	go build -o $(go env GOPATH)/bin/mcs-vet ./cmd/mcs-vet
//	go vet -vettool=$(go env GOPATH)/bin/mcs-vet ./...
//
//	# standalone module mode: dependency-ordered, parallel, cached
//	mcs-vet [flags] [module-root]
//
// Module-mode flags: -workers N, -json, -sarif FILE, -github,
// -ignores (audit every //lint:ignore directive and fail on missing
// justifications or stale suppressions), -cache DIR, -nocache.
//
// scripts/verify.sh runs both modes on every verification pass. See
// docs/STATIC_ANALYSIS.md for the analyzers, their fact types, the
// invariants they protect, and the //lint:ignore escape hatch.
package main

import (
	"mcspeedup/internal/lint"
	"mcspeedup/internal/lint/suite"
)

func main() {
	lint.Main(suite.Analyzers...)
}
