// Command mcs-vet is the repository's custom static-analysis suite: a
// vet tool (in the sense of `go vet -vettool`) enforcing the
// correctness invariants the analysis engine's guarantees rest on.
//
// Usage:
//
//	go build -o $(go env GOPATH)/bin/mcs-vet ./cmd/mcs-vet
//	go vet -vettool=$(go env GOPATH)/bin/mcs-vet ./...
//
// scripts/verify.sh runs exactly that on every verification pass. See
// docs/STATIC_ANALYSIS.md for the analyzers, the invariants they
// protect, and the //lint:ignore escape hatch.
package main

import (
	"mcspeedup/internal/lint"
	"mcspeedup/internal/lint/clustercheck"
	"mcspeedup/internal/lint/deltacheck"
	"mcspeedup/internal/lint/determcheck"
	"mcspeedup/internal/lint/metricscheck"
	"mcspeedup/internal/lint/prunecheck"
	"mcspeedup/internal/lint/ratcheck"
	"mcspeedup/internal/lint/scratchcheck"
	"mcspeedup/internal/lint/simcheck"
)

func main() {
	lint.Main(
		ratcheck.Analyzer,
		determcheck.Analyzer,
		scratchcheck.Analyzer,
		simcheck.Analyzer,
		metricscheck.Analyzer,
		prunecheck.Analyzer,
		deltacheck.Analyzer,
		clustercheck.Analyzer,
	)
}
