// Command mcs-sim simulates a dual-criticality task set under the
// paper's runtime protocol — EDF with mode switching, temporary processor
// speedup, and idle-triggered reset — on a random sporadic workload with
// overruns, and reports misses, HI-mode episodes, and an ASCII Gantt
// chart.
//
// Usage:
//
//	mcs-sim [flags] [taskset.json]
//
//	-speed float     HI-mode speed factor (default 2)
//	-horizon int     workload horizon in ticks (default 20 periods)
//	-overrun float   per-HI-job overrun probability (default 0.3)
//	-seed int        RNG seed (default 1)
//	-budget int      speedup budget in ticks (0 = unlimited)
//	-sync            synchronous periodic workload, every HI job overruns
//	-gantt int       Gantt chart width (0 = no chart)
//	-json string     write the full run (episodes, jobs, trace) as JSON
//	-responses       print per-task response-time statistics
//	-workload string replay a workload JSON file instead of generating one
//	-save string     save the generated workload as JSON for later replay
//	-fleet int       Monte-Carlo fleet: run N sampled-ACET replicates and
//	                 print streaming aggregates instead of a single trace
//	-workers int     fleet worker pool size (0 = one per CPU; output is
//	                 byte-identical for any value)
//
// In fleet mode -speed, -seed, -budget, -horizon, and -overrun keep
// their meanings (-overrun becomes the per-HI-job ACET overrun
// probability), -json emits the fleet summary (the same bytes
// POST /v1/fleet returns), and the other single-run flags are ignored.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"

	"mcspeedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-sim: ")
	var (
		speed     = flag.Float64("speed", 2, "HI-mode speed factor")
		horizon   = flag.Int64("horizon", 0, "workload horizon in ticks (default 20 max-periods)")
		overrun   = flag.Float64("overrun", 0.3, "per-HI-job overrun probability")
		seed      = flag.Int64("seed", 1, "random seed")
		budget    = flag.Int64("budget", 0, "HI-mode wall-clock budget in ticks (0 = unlimited)")
		sync      = flag.Bool("sync", false, "synchronous periodic workload with every HI job overrunning")
		gantt     = flag.Int("gantt", 100, "Gantt chart width (0 disables)")
		jsonOut   = flag.String("json", "", "write the run as JSON to this file ('-' for stdout)")
		responses = flag.Bool("responses", false, "print per-task response-time statistics")
		loadWL    = flag.String("workload", "", "replay a workload JSON file")
		saveWL    = flag.String("save", "", "save the generated workload as JSON")
		fleetN    = flag.Int("fleet", 0, "Monte-Carlo fleet: number of sampled replicates (0 = single run)")
		workers   = flag.Int("workers", 0, "fleet worker pool size (0 = one per CPU)")
	)
	flag.Parse()

	data, err := readInput(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	set, err := mcspeedup.ParseSetJSON(data)
	if err != nil {
		log.Fatal(err)
	}

	if *fleetN > 0 {
		acet := mcspeedup.DefaultACET()
		acet.OverrunProb = *overrun
		p := mcspeedup.FleetParams{
			Set:     set,
			Runs:    *fleetN,
			Seed:    *seed,
			Speedup: mcspeedup.RatFromFloat(*speed),
			Horizon: mcspeedup.Time(*horizon),
			Workers: *workers,
			ACET:    acet,
		}
		if *budget > 0 {
			p.Budget = mcspeedup.NewRat(*budget, 1)
		}
		s, err := mcspeedup.RunFleet(p)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "" {
			data, err := s.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if *jsonOut == "-" {
				fmt.Println(string(data))
			} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(s.Table())
		return
	}

	h := mcspeedup.Time(*horizon)
	if h <= 0 {
		h = 20 * set.MaxPeriod()
	}
	var w mcspeedup.Workload
	switch {
	case *loadWL != "":
		data, err := os.ReadFile(*loadWL)
		if err != nil {
			log.Fatal(err)
		}
		w, err = mcspeedup.ParseWorkload(data, set)
		if err != nil {
			log.Fatal(err)
		}
	case *sync:
		w = mcspeedup.SynchronousPeriodic(set, h, mcspeedup.AlwaysOverrun)
	default:
		w = mcspeedup.RandomSporadic(rand.New(rand.NewSource(*seed)), set, h, *overrun)
	}
	if *saveWL != "" {
		data, err := mcspeedup.MarshalWorkload(w)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*saveWL, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	cfg := mcspeedup.SimConfig{
		Speedup:      mcspeedup.RatFromFloat(*speed),
		CollectTrace: *gantt > 0 || *jsonOut != "",
		CollectJobs:  *responses || *jsonOut != "",
	}
	if *budget > 0 {
		cfg.Budget = mcspeedup.NewRat(*budget, 1)
	}
	res, err := mcspeedup.Simulate(set, w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jobs: %d completed, %d dropped, %d killed; %d HI-mode episodes; %d deadline misses\n",
		res.Completed, res.Dropped, res.Killed, len(res.Episodes), len(res.Misses))
	for _, m := range res.Misses {
		fmt.Printf("  MISS task %s: arrival %d, deadline %v, detected %v\n",
			set[m.Task].Name, m.Arrival, m.Deadline, m.DetectedAt)
	}
	if n := len(res.Episodes); n > 0 {
		fmt.Printf("longest HI-mode episode: %v ticks\n", res.MaxEpisode())
		rt, err := mcspeedup.ResetTime(set, cfg.Speedup)
		if err == nil {
			fmt.Printf("analytical bound Δ_R:    %v ticks\n", rt.Reset)
		}
	}
	if *responses {
		fmt.Print(mcspeedup.ResponseTable(set, res))
	}
	if *gantt > 0 {
		fmt.Print(mcspeedup.Gantt(set, res, *gantt))
	}
	if *jsonOut != "" {
		data, err := mcspeedup.ExportSimJSON(set, res)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if len(res.Misses) > 0 {
		os.Exit(1)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
