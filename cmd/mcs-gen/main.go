// Command mcs-gen emits a random dual-criticality task set as JSON,
// following the generation protocol of the paper's experimental section
// (reference [4]: grow until a target system utilization is met).
//
// Usage:
//
//	mcs-gen [flags] > taskset.json
//
//	-u float        target average utilization (U^LO+U^HI)/2 (default 0.6)
//	-seed int       RNG seed (default 1)
//	-gamma-min/max  WCET uncertainty range (default 1..3)
//	-example        emit the paper's Table-I example instead
//	-fms            emit the flight-management-system case study (§VI.A)
//	-gamma float    WCET uncertainty factor for -fms (default 2)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"mcspeedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-gen: ")
	var (
		uBound   = flag.Float64("u", 0.6, "target average system utilization")
		seed     = flag.Int64("seed", 1, "random seed")
		gammaMin = flag.Float64("gamma-min", 1, "minimum C(HI)/C(LO)")
		gammaMax = flag.Float64("gamma-max", 3, "maximum C(HI)/C(LO)")
		example  = flag.Bool("example", false, "emit the paper's Table-I example set")
		fms      = flag.Bool("fms", false, "emit the flight-management-system case study")
		gamma    = flag.Float64("gamma", 2, "WCET uncertainty factor γ for -fms")
	)
	flag.Parse()

	var set mcspeedup.Set
	switch {
	case *example:
		set = mcspeedup.TableISet()
	case *fms:
		var err error
		set, err = mcspeedup.FMSTasks(mcspeedup.RatFromFloat(*gamma))
		if err != nil {
			log.Fatal(err)
		}
	default:
		if *uBound <= 0 || *uBound >= 1 {
			log.Fatalf("target utilization %g outside (0,1)", *uBound)
		}
		p := mcspeedup.DefaultGenerator()
		p.GammaMin, p.GammaMax = *gammaMin, *gammaMax
		set = p.MustSet(rand.New(rand.NewSource(*seed)), *uBound)
	}

	data, err := set.MarshalIndent()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := os.Stdout.Write(append(data, '\n')); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d tasks, U(LO)=%.3f U(HI)=%.3f\n",
		len(set), set.Util(mcspeedup.LO).Float64(), set.Util(mcspeedup.HI).Float64())
}
