// Command mcs-tradeoff explores the paper's Section-V design space for a
// concrete task set: given a platform speed cap (e.g. the 2× Intel Turbo
// Boost ceiling the paper cites) and a recovery budget, it reports
//
//   - the minimum service degradation y that fits under the cap,
//   - the feasible window of overrun-preparation factors x,
//   - the minimum speed for the recovery budget,
//   - and a y-sweep table of (s_min, Δ_R) so the trade-off is visible.
//
// Usage:
//
//	mcs-tradeoff [flags] [taskset.json]
//
//	-cap float      HI-mode speed cap (default 2)
//	-budget int     recovery budget in ticks (default 50000 = 5 s)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mcspeedup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcs-tradeoff: ")
	var (
		capF   = flag.Float64("cap", 2, "HI-mode speed cap")
		budget = flag.Int64("budget", 50000, "recovery budget in ticks")
	)
	flag.Parse()

	data, err := readInput(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	set, err := mcspeedup.ParseSetJSON(data)
	if err != nil {
		log.Fatal(err)
	}
	speedCap := mcspeedup.RatFromFloat(*capF)

	fmt.Println(set.Table())

	// 1. Minimum degradation under the cap (with minimal x applied per
	// candidate configuration).
	_, prepared, err := mcspeedup.MinimalX(set)
	if err != nil {
		log.Fatalf("LO mode infeasible: %v", err)
	}
	y, degraded, err := mcspeedup.MinimalY(prepared, speedCap)
	if err != nil {
		fmt.Printf("no degradation factor fits under cap %v: %v\n", speedCap, err)
	} else {
		sp, err := mcspeedup.MinSpeedup(degraded)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("minimal degradation for cap %v: y = %v (%.3f) → s_min = %v (%.3f)\n",
			speedCap, y, y.Float64(), sp.Speedup, sp.Speedup.Float64())

		// 2. Feasible x window at that degradation.
		base, err := set.DegradeLO(y)
		if err != nil {
			log.Fatal(err)
		}
		xLo, xHi, err := mcspeedup.FeasibleXWindow(base, speedCap)
		if err != nil {
			fmt.Printf("feasible x window: none (%v)\n", err)
		} else {
			fmt.Printf("feasible x window: [%.4f, %.4f]\n", xLo.Float64(), xHi.Float64())
		}
	}

	// 3. Speed needed for the recovery budget (on the prepared set).
	sr, err := mcspeedup.MinSpeedForReset(prepared, mcspeedup.Time(*budget))
	if err != nil {
		log.Fatal(err)
	}
	openNote := ""
	if !sr.Attained {
		openNote = " (open infimum: use any speed strictly above)"
	}
	fmt.Printf("minimum speed for Δ_R ≤ %d ticks: %v (%.4f)%s\n",
		*budget, sr.Speed, sr.Speed.Float64(), openNote)

	// 4. y sweep.
	fmt.Println("\ny sweep (minimal x per row):")
	fmt.Printf("%-8s %-14s %-14s %-14s\n", "y", "s_min", "Δ_R(cap)", "Δ_R(cap) [ok]")
	for _, yv := range []float64{1, 1.25, 1.5, 2, 3, 4} {
		row, err := set.DegradeLO(mcspeedup.RatFromFloat(yv))
		if err != nil {
			continue
		}
		_, rowPrepared, err := mcspeedup.MinimalX(row)
		if err != nil {
			continue
		}
		sp, err := mcspeedup.MinSpeedup(rowPrepared)
		if err != nil {
			log.Fatal(err)
		}
		rt, err := mcspeedup.ResetTime(rowPrepared, speedCap)
		if err != nil {
			log.Fatal(err)
		}
		within := "no"
		if !rt.Reset.IsInf() && rt.Reset.Cmp(mcspeedup.NewRat(*budget, 1)) <= 0 &&
			sp.Speedup.Cmp(speedCap) <= 0 {
			within = "yes"
		}
		fmt.Printf("%-8.2f %-14.4f %-14v %-14s\n", yv, sp.Speedup.Float64(), rt.Reset, within)
	}
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
